#include "cluster/clustering.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

TEST(Clustering, IdentityByDefault) {
  const Clustering c(4);
  EXPECT_EQ(c.num_modules(), 4);
  EXPECT_EQ(c.num_clusters(), 4);
  for (ModuleId m = 0; m < 4; ++m) {
    EXPECT_EQ(c.cluster_of(m), m);
    EXPECT_EQ(c.cluster_size(m), 1);
  }
}

TEST(Clustering, ExplicitMapCountsSizes) {
  const Clustering c({0, 1, 0, 1, 2});
  EXPECT_EQ(c.num_clusters(), 3);
  EXPECT_EQ(c.cluster_size(0), 2);
  EXPECT_EQ(c.cluster_size(1), 2);
  EXPECT_EQ(c.cluster_size(2), 1);
}

TEST(Clustering, RejectsNonDenseIds) {
  EXPECT_THROW(Clustering({0, 2}), std::invalid_argument);
  EXPECT_THROW(Clustering({-1, 0}), std::invalid_argument);
}

TEST(Clustering, ProjectLiftsPartition) {
  const Clustering c({0, 0, 1, 1, 2});
  Partition coarse(3);
  coarse.assign(1, Side::kRight);
  const Partition fine = c.project(coarse);
  EXPECT_EQ(fine.side(0), Side::kLeft);
  EXPECT_EQ(fine.side(1), Side::kLeft);
  EXPECT_EQ(fine.side(2), Side::kRight);
  EXPECT_EQ(fine.side(3), Side::kRight);
  EXPECT_EQ(fine.side(4), Side::kLeft);
}

TEST(Clustering, ProjectRejectsSizeMismatch) {
  const Clustering c({0, 0, 1});
  EXPECT_THROW(c.project(Partition(3)), std::invalid_argument);
}

TEST(HeavyEdgeMatching, PairsStronglyConnectedModules) {
  // Modules 0-1 tied by two 2-pin nets; 2-3 by one; 4 dangling via a
  // 3-pin net.  Matching must pair (0,1) and (2,3).
  HypergraphBuilder b(5);
  b.add_net({0, 1});
  b.add_net({0, 1});
  b.add_net({2, 3});
  b.add_net({1, 2, 4});
  const Clustering c = heavy_edge_matching(b.build());
  EXPECT_EQ(c.cluster_of(0), c.cluster_of(1));
  EXPECT_EQ(c.cluster_of(2), c.cluster_of(3));
  EXPECT_NE(c.cluster_of(0), c.cluster_of(2));
}

TEST(HeavyEdgeMatching, ClusterSizesAtMostTwo) {
  GeneratorConfig config;
  config.name = "hem-test";
  config.num_modules = 300;
  config.num_nets = 330;
  config.leaf_max = 16;
  const Hypergraph h = generate_circuit(config).hypergraph;
  const Clustering c = heavy_edge_matching(h);
  EXPECT_LT(c.num_clusters(), h.num_modules());
  EXPECT_GE(c.num_clusters(), (h.num_modules() + 1) / 2);
  for (std::int32_t cl = 0; cl < c.num_clusters(); ++cl)
    EXPECT_LE(c.cluster_size(cl), 2);
}

TEST(Contract, MergesPinsAndDropsInternalNets) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});     // inside cluster 0: dropped
  b.add_net({0, 2});     // becomes {0, 1}
  b.add_net({0, 1, 3});  // becomes {0, 1} after dedup (0,1 -> 0; 3 -> 1)
  const Hypergraph h = b.build();
  const Clustering c({0, 0, 1, 1});
  const Hypergraph coarse = contract(h, c);
  EXPECT_EQ(coarse.num_modules(), 2);
  EXPECT_EQ(coarse.num_nets(), 2);
  for (NetId n = 0; n < coarse.num_nets(); ++n)
    EXPECT_EQ(coarse.net_size(n), 2);
}

TEST(Contract, CutIsPreservedUnderProjection) {
  // A cut of the coarse hypergraph equals the cut of the projected fine
  // partition restricted to surviving nets; dropped nets are internal to
  // clusters and can never be cut.
  GeneratorConfig config;
  config.name = "contract-cut";
  config.num_modules = 200;
  config.num_nets = 230;
  config.leaf_max = 16;
  const Hypergraph h = generate_circuit(config).hypergraph;
  const Clustering c = heavy_edge_matching(h);
  const Hypergraph coarse = contract(h, c);

  Partition coarse_partition(coarse.num_modules());
  for (std::int32_t cl = 0; cl < coarse.num_modules(); cl += 2)
    coarse_partition.assign(cl, Side::kRight);
  const Partition fine_partition = c.project(coarse_partition);
  EXPECT_EQ(net_cut(coarse, coarse_partition),
            net_cut(h, fine_partition));
}

TEST(Contract, RejectsSizeMismatch) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2});
  EXPECT_THROW(contract(b.build(), Clustering(2)), std::invalid_argument);
}

}  // namespace
}  // namespace netpart
