#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "circuits/generator.hpp"
#include "cluster/clustering.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"

/// \file coarsen_property_test.cpp
/// Property tests for the multilevel coarsening substrate: random
/// hypergraphs under several net weightings, checked against the exact
/// conservation laws contract_with_info() promises.  These invariants are
/// what make the V-cycle engine's "refinement never hurts" guarantee exact
/// rather than heuristic, so they are tested exhaustively rather than
/// spot-checked.

namespace netpart {
namespace {

/// Deterministic in-test generator (split-mix style) so failures replay.
class TestRng {
 public:
  explicit TestRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::int32_t below(std::int32_t bound) {
    return static_cast<std::int32_t>(next() % static_cast<std::uint64_t>(bound));
  }

 private:
  std::uint64_t state_;
};

/// A random connected-ish hypergraph: a module chain for connectivity plus
/// random nets of size 2..6.
Hypergraph random_hypergraph(std::uint64_t seed, std::int32_t modules,
                             std::int32_t extra_nets, int weighting) {
  TestRng rng(seed);
  HypergraphBuilder b(modules);
  const auto weight_of = [&](std::int32_t index, std::int32_t size) {
    switch (weighting) {
      case 0: return 1;                       // unit
      case 1: return index % 7 + 1;           // cyclic small weights
      case 2: return size;                    // weight tracks net size
      default: return 1 + rng.below(100);     // random heavy weights
    }
  };
  std::int32_t index = 0;
  for (ModuleId m = 0; m + 1 < modules; ++m, ++index)
    b.add_net({m, m + 1}, weight_of(index, 2));
  for (std::int32_t i = 0; i < extra_nets; ++i, ++index) {
    const std::int32_t size = 2 + rng.below(5);
    std::vector<ModuleId> pins;
    for (std::int32_t p = 0; p < size; ++p) pins.push_back(rng.below(modules));
    // The builder requires distinct pins per net; dedup and skip tiny rests.
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;
    b.add_net(pins, weight_of(index, static_cast<std::int32_t>(pins.size())));
  }
  return b.build();
}

std::vector<std::int64_t> random_weights(std::uint64_t seed,
                                         std::int32_t modules) {
  TestRng rng(seed);
  std::vector<std::int64_t> weights(static_cast<std::size_t>(modules));
  for (auto& w : weights) w = 1 + rng.below(9);
  return weights;
}

/// The whole invariant battery for one (hypergraph, options, weights) case.
void check_contraction(const Hypergraph& h, const MatchingOptions& options,
                       std::span<const std::int64_t> fine_weights,
                       std::uint64_t partition_seed) {
  const Clustering c = heavy_edge_clustering(h, options);

  // Membership round-trip: dense cluster ids, sizes consistent, every
  // module inside a valid cluster.
  ASSERT_EQ(c.num_modules(), h.num_modules());
  std::vector<std::int32_t> sizes(static_cast<std::size_t>(c.num_clusters()));
  for (ModuleId m = 0; m < h.num_modules(); ++m) {
    ASSERT_GE(c.cluster_of(m), 0);
    ASSERT_LT(c.cluster_of(m), c.num_clusters());
    ++sizes[static_cast<std::size_t>(c.cluster_of(m))];
  }
  for (std::int32_t k = 0; k < c.num_clusters(); ++k) {
    ASSERT_GT(sizes[static_cast<std::size_t>(k)], 0) << "empty cluster " << k;
    ASSERT_EQ(sizes[static_cast<std::size_t>(k)], c.cluster_size(k));
  }

  // Weight cap: multi-module clusters never exceed max_cluster_weight.
  if (options.max_cluster_weight > 0) {
    std::vector<std::int64_t> cluster_weight(
        static_cast<std::size_t>(c.num_clusters()), 0);
    for (ModuleId m = 0; m < h.num_modules(); ++m)
      cluster_weight[static_cast<std::size_t>(c.cluster_of(m))] +=
          fine_weights.empty() ? 1
                               : fine_weights[static_cast<std::size_t>(m)];
    for (std::int32_t k = 0; k < c.num_clusters(); ++k)
      if (c.cluster_size(k) > 1)
        ASSERT_LE(cluster_weight[static_cast<std::size_t>(k)],
                  options.max_cluster_weight);
  }

  // Side purity under a constraint.
  if (options.constraint != nullptr)
    for (ModuleId m = 0; m < h.num_modules(); ++m)
      for (ModuleId o = m + 1; o < h.num_modules(); ++o)
        if (c.cluster_of(m) == c.cluster_of(o))
          ASSERT_EQ(options.constraint->side(m), options.constraint->side(o));

  const Contraction ct = contract_with_info(h, c, fine_weights);

  // Module-weight conservation: total and per cluster.
  const std::int64_t fine_total =
      fine_weights.empty()
          ? h.num_modules()
          : std::accumulate(fine_weights.begin(), fine_weights.end(),
                            std::int64_t{0});
  ASSERT_EQ(std::accumulate(ct.module_weights.begin(),
                            ct.module_weights.end(), std::int64_t{0}),
            fine_total);
  std::vector<std::int64_t> expected_weight(
      static_cast<std::size_t>(c.num_clusters()), 0);
  for (ModuleId m = 0; m < h.num_modules(); ++m)
    expected_weight[static_cast<std::size_t>(c.cluster_of(m))] +=
        fine_weights.empty() ? 1 : fine_weights[static_cast<std::size_t>(m)];
  ASSERT_EQ(ct.module_weights, expected_weight);

  // Pin conservation, exactly as documented.
  ASSERT_EQ(ct.coarse.num_pins(), h.num_pins() - ct.pins_merged -
                                      ct.pins_dropped -
                                      ct.parallel_pins_merged);

  // Net preimages: every coarse net is hit by at least one fine net, maps
  // stay in range, and each coarse net's weight is the exact sum of its
  // preimage's weights.
  ASSERT_EQ(static_cast<std::int32_t>(ct.net_of_fine.size()), h.num_nets());
  std::vector<std::int64_t> preimage_weight(
      static_cast<std::size_t>(ct.coarse.num_nets()), 0);
  std::vector<std::int32_t> preimage_count(
      static_cast<std::size_t>(ct.coarse.num_nets()), 0);
  for (NetId n = 0; n < h.num_nets(); ++n) {
    const NetId cn = ct.net_of_fine[static_cast<std::size_t>(n)];
    if (cn == -1) continue;
    ASSERT_GE(cn, 0);
    ASSERT_LT(cn, ct.coarse.num_nets());
    preimage_weight[static_cast<std::size_t>(cn)] += h.net_weight(n);
    ++preimage_count[static_cast<std::size_t>(cn)];
    // The coarse pin set must be the deduplicated image of the fine one.
    for (const ModuleId m : h.pins(n)) {
      const auto pins = ct.coarse.pins(cn);
      ASSERT_NE(std::find(pins.begin(), pins.end(), c.cluster_of(m)),
                pins.end());
    }
  }
  for (NetId cn = 0; cn < ct.coarse.num_nets(); ++cn) {
    ASSERT_GT(preimage_count[static_cast<std::size_t>(cn)], 0)
        << "coarse net " << cn << " has no fine preimage";
    ASSERT_EQ(preimage_weight[static_cast<std::size_t>(cn)],
              ct.coarse.net_weight(cn));
  }

  // Projected-cut equality on random coarse partitions: the coarse
  // weighted cut IS the fine weighted cut of the projection.  This is the
  // property that makes coarse-level refinement exact.
  TestRng rng(partition_seed);
  for (int trial = 0; trial < 8; ++trial) {
    Partition coarse_p(ct.coarse.num_modules());
    for (ModuleId k = 0; k < ct.coarse.num_modules(); ++k)
      coarse_p.assign(k, rng.below(2) == 0 ? Side::kLeft : Side::kRight);
    const Partition fine_p = c.project(coarse_p);
    for (ModuleId m = 0; m < h.num_modules(); ++m)
      ASSERT_EQ(fine_p.side(m), coarse_p.side(c.cluster_of(m)));
    ASSERT_EQ(weighted_net_cut(ct.coarse, coarse_p),
              weighted_net_cut(h, fine_p));
  }
}

TEST(CoarsenProperty, RandomHypergraphsAllWeightings) {
  for (int weighting = 0; weighting < 4; ++weighting) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const std::int32_t modules = 40 + static_cast<std::int32_t>(seed) * 37;
      const Hypergraph h =
          random_hypergraph(seed * 977 + static_cast<std::uint64_t>(weighting),
                            modules, modules * 2, weighting);
      MatchingOptions options;
      options.rating_net_size_limit = 64;
      check_contraction(h, options, {}, seed * 31 + 7);
    }
  }
}

TEST(CoarsenProperty, WeightCapAndModuleWeightsRespected) {
  for (int weighting = 0; weighting < 4; ++weighting) {
    const Hypergraph h =
        random_hypergraph(static_cast<std::uint64_t>(1234 + weighting), 160,
                          320, weighting);
    const std::vector<std::int64_t> weights = random_weights(99, 160);
    MatchingOptions options;
    options.module_weights = weights;
    options.max_cluster_weight = 24;
    options.rating_net_size_limit = 64;
    check_contraction(h, options, weights, 555);
  }
}

TEST(CoarsenProperty, ConstrainedClusteringStaysSidePure) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Hypergraph h = random_hypergraph(seed * 7919, 120, 240, 1);
    TestRng rng(seed);
    Partition p(120);
    for (ModuleId m = 0; m < 120; ++m)
      p.assign(m, rng.below(2) == 0 ? Side::kLeft : Side::kRight);
    MatchingOptions options;
    options.constraint = &p;
    options.rating_net_size_limit = 64;
    check_contraction(h, options, {}, seed);
  }
}

TEST(CoarsenProperty, CommunityRestrictionNeverCrossesLabels) {
  const Hypergraph h = random_hypergraph(4242, 150, 300, 2);
  const std::vector<std::int32_t> labels =
      community_labels(h, /*rounds=*/2, /*net_size_limit=*/64);
  MatchingOptions options;
  options.communities = labels;
  options.rating_net_size_limit = 64;
  const Clustering c = heavy_edge_clustering(h, options);
  for (ModuleId m = 0; m < h.num_modules(); ++m)
    for (ModuleId o = m + 1; o < h.num_modules(); ++o)
      if (c.cluster_of(m) == c.cluster_of(o))
        ASSERT_EQ(labels[static_cast<std::size_t>(m)],
                  labels[static_cast<std::size_t>(o)]);
  check_contraction(h, options, {}, 4242);
}

TEST(CoarsenProperty, GeneratedCircuitsSurviveRepeatedContraction) {
  // Chain two contraction levels on a clustered circuit, threading the
  // accumulated weights through — the exact shape the V-cycle hierarchy
  // builds — and re-check every invariant at the second level.
  GeneratorConfig config;
  config.name = "coarsen-prop";
  config.num_modules = 400;
  config.num_nets = 440;
  const Hypergraph h = generate_circuit(config).hypergraph;
  MatchingOptions options;
  options.rating_net_size_limit = 64;
  options.max_cluster_weight = 8;
  const Clustering c1 = heavy_edge_clustering(h, options);
  const Contraction l1 = contract_with_info(h, c1);
  MatchingOptions level2 = options;
  level2.module_weights = l1.module_weights;
  check_contraction(l1.coarse, level2, l1.module_weights, 31337);
}

}  // namespace
}  // namespace netpart
