#include "linalg/csr_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace netpart::linalg {
namespace {

CsrMatrix example2x2() {
  // [[2, -1], [-1, 2]]
  return CsrMatrix::from_triplets(
      2, {{0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0}});
}

TEST(CsrMatrix, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::from_triplets(0, {});
  EXPECT_EQ(m.dim(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(CsrMatrix, BasicAccess) {
  const CsrMatrix m = example2x2();
  EXPECT_EQ(m.dim(), 2);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 2.0);
}

TEST(CsrMatrix, AbsentEntryIsZero) {
  const CsrMatrix m = CsrMatrix::from_triplets(3, {{0, 2, 5.0}});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 0.0);
  EXPECT_EQ(m.nnz(), 1);
}

TEST(CsrMatrix, DuplicatesSummed) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, {{0, 1, 1.5}, {0, 1, 2.5}, {0, 1, -1.0}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
}

TEST(CsrMatrix, RowsSortedByColumn) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(4, {{1, 3, 1.0}, {1, 0, 2.0}, {1, 2, 3.0}});
  const auto cols = m.row_cols(1);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 2);
  EXPECT_EQ(cols[2], 3);
  EXPECT_DOUBLE_EQ(m.row_values(1)[0], 2.0);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  const CsrMatrix m = example2x2();
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 1.0 - 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0 * 1.0 + 2.0 * 2.0);
}

TEST(CsrMatrix, MultiplyEmptyRowGivesZero) {
  const CsrMatrix m = CsrMatrix::from_triplets(2, {{0, 0, 1.0}});
  const std::vector<double> x{5.0, 7.0};
  std::vector<double> y{99.0, 99.0};
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(CsrMatrix, SymmetryCheck) {
  EXPECT_TRUE(example2x2().is_symmetric());
  const CsrMatrix asym = CsrMatrix::from_triplets(2, {{0, 1, 1.0}});
  EXPECT_FALSE(asym.is_symmetric());
}

TEST(CsrMatrix, InfNorm) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, {{0, 0, -3.0}, {0, 1, 2.0}, {1, 1, 4.0}});
  EXPECT_DOUBLE_EQ(m.inf_norm(), 5.0);
}

TEST(CsrMatrix, RejectsOutOfRangeIndices) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, {{0, 2, 1.0}}), std::out_of_range);
  EXPECT_THROW(CsrMatrix::from_triplets(2, {{-1, 0, 1.0}}),
               std::out_of_range);
  EXPECT_THROW(CsrMatrix::from_triplets(-1, {}), std::out_of_range);
}

TEST(CsrMatrix, ExplicitZeroKept) {
  const CsrMatrix m = CsrMatrix::from_triplets(2, {{0, 1, 0.0}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

}  // namespace
}  // namespace netpart::linalg
