#include "hypergraph/cut_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace netpart {
namespace {

/// Chain of modules 0-1-2-3 with three 2-pin nets, plus one 3-pin net
/// {0,1,2}.
Hypergraph chain4() {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 3});
  b.add_net({0, 1, 2});
  return b.build();
}

Partition split_at(std::int32_t n, std::int32_t first_right) {
  Partition p(n);
  for (ModuleId m = first_right; m < n; ++m) p.assign(m, Side::kRight);
  return p;
}

TEST(CutMetrics, NetCutCountsSpanningNets) {
  const Hypergraph h = chain4();
  const Partition p = split_at(4, 2);  // {0,1} | {2,3}
  EXPECT_FALSE(is_net_cut(h, p, 0));
  EXPECT_TRUE(is_net_cut(h, p, 1));
  EXPECT_FALSE(is_net_cut(h, p, 2));
  EXPECT_TRUE(is_net_cut(h, p, 3));
  EXPECT_EQ(net_cut(h, p), 2);
}

TEST(CutMetrics, RatioCutValue) {
  const Hypergraph h = chain4();
  const Partition p = split_at(4, 2);
  EXPECT_DOUBLE_EQ(ratio_cut(h, p), 2.0 / (2.0 * 2.0));
}

TEST(CutMetrics, ImproperPartitionIsInfinite) {
  const Hypergraph h = chain4();
  const Partition p(4);  // everything left
  EXPECT_TRUE(std::isinf(ratio_cut(h, p)));
  EXPECT_TRUE(std::isinf(ratio_cut_value(5, 0, 4)));
  EXPECT_TRUE(std::isinf(ratio_cut_value(5, 4, 0)));
}

TEST(CutMetrics, SinglePinNetNeverCut) {
  HypergraphBuilder b(2);
  b.add_net({0});
  b.add_net({0, 1});
  const Hypergraph h = b.build();
  Partition p(2);
  p.assign(1, Side::kRight);
  EXPECT_FALSE(is_net_cut(h, p, 0));
  EXPECT_EQ(net_cut(h, p), 1);
}

TEST(IncrementalCut, MatchesBatchAfterMoves) {
  const Hypergraph h = chain4();
  IncrementalCut tracker(h, Partition(4));
  EXPECT_EQ(tracker.cut(), 0);

  tracker.move(3, Side::kRight);
  EXPECT_EQ(tracker.cut(), net_cut(h, tracker.partition()));
  tracker.move(2, Side::kRight);
  EXPECT_EQ(tracker.cut(), net_cut(h, tracker.partition()));
  EXPECT_EQ(tracker.cut(), 2);
  tracker.move(3, Side::kLeft);
  EXPECT_EQ(tracker.cut(), net_cut(h, tracker.partition()));
  tracker.flip(0);
  EXPECT_EQ(tracker.cut(), net_cut(h, tracker.partition()));
}

TEST(IncrementalCut, MoveToSameSideIsNoOp) {
  const Hypergraph h = chain4();
  IncrementalCut tracker(h, split_at(4, 2));
  const std::int32_t before = tracker.cut();
  tracker.move(0, Side::kLeft);
  EXPECT_EQ(tracker.cut(), before);
}

TEST(IncrementalCut, RatioTracksPartitionSizes) {
  const Hypergraph h = chain4();
  IncrementalCut tracker(h, split_at(4, 2));
  EXPECT_DOUBLE_EQ(tracker.ratio(), 2.0 / 4.0);
  tracker.move(1, Side::kRight);
  EXPECT_DOUBLE_EQ(tracker.ratio(),
                   static_cast<double>(tracker.cut()) / (1.0 * 3.0));
}

TEST(IncrementalCut, LeftPinsExposed) {
  const Hypergraph h = chain4();
  IncrementalCut tracker(h, split_at(4, 2));
  EXPECT_EQ(tracker.left_pins(3), 2);  // net {0,1,2}: modules 0,1 left
  tracker.move(0, Side::kRight);
  EXPECT_EQ(tracker.left_pins(3), 1);
}

TEST(CutStats, GroupsByNetSize) {
  const Hypergraph h = chain4();
  const Partition p = split_at(4, 2);
  const auto rows = cut_stats_by_net_size(h, p);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].net_size, 2);
  EXPECT_EQ(rows[0].num_nets, 3);
  EXPECT_EQ(rows[0].num_cut, 1);
  EXPECT_EQ(rows[1].net_size, 3);
  EXPECT_EQ(rows[1].num_nets, 1);
  EXPECT_EQ(rows[1].num_cut, 1);
}

TEST(CutStats, TotalsAreConsistent) {
  const Hypergraph h = chain4();
  const Partition p = split_at(4, 1);
  std::int32_t nets = 0;
  std::int32_t cut = 0;
  for (const auto& row : cut_stats_by_net_size(h, p)) {
    nets += row.num_nets;
    cut += row.num_cut;
  }
  EXPECT_EQ(nets, h.num_nets());
  EXPECT_EQ(cut, net_cut(h, p));
}

}  // namespace
}  // namespace netpart
