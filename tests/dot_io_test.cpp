#include "io/dot_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace netpart::io {
namespace {

Hypergraph small() {
  HypergraphBuilder b(3);
  b.add_net({0, 1});
  b.add_net({1, 2}, 4);
  return b.build();
}

TEST(DotNetlist, EmitsModulesNetsAndPins) {
  std::ostringstream os;
  write_dot_netlist(os, small());
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph netlist {"), std::string::npos);
  EXPECT_NE(dot.find("m0 [shape=circle"), std::string::npos);
  EXPECT_NE(dot.find("n0 [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- m0;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- m2;"), std::string::npos);
  // Weighted net rendered thicker.
  EXPECT_NE(dot.find("n1 [shape=box, label=\"n1\", penwidth=2]"),
            std::string::npos);
}

TEST(DotNetlist, PartitionColorsModules) {
  Partition p(3);
  p.assign(2, Side::kRight);
  DotOptions options;
  options.partition = &p;
  std::ostringstream os;
  write_dot_netlist(os, small(), options);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightsalmon"), std::string::npos);
}

TEST(DotNetlist, MaxNetSizeFiltersLargeNets) {
  HypergraphBuilder b(5);
  b.add_net({0, 1});
  b.add_net({0, 1, 2, 3, 4});
  DotOptions options;
  options.max_net_size = 3;
  std::ostringstream os;
  write_dot_netlist(os, b.build(), options);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("n0 "), std::string::npos);
  EXPECT_EQ(dot.find("n1 "), std::string::npos);
}

TEST(DotGraph, EmitsEachEdgeOnceWithPenwidth) {
  const WeightedGraph g =
      WeightedGraph::from_edges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  std::ostringstream os;
  write_dot_graph(os, g, "ig");
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph ig {"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v1"), std::string::npos);
  EXPECT_NE(dot.find("v1 -- v2"), std::string::npos);
  EXPECT_EQ(dot.find("v1 -- v0"), std::string::npos);  // once per edge
  // The heavier edge gets the maximum penwidth (3.5).
  EXPECT_NE(dot.find("v1 -- v2 [penwidth=3.5]"), std::string::npos);
}

TEST(DotGraph, EmptyGraphStillValid) {
  const WeightedGraph g = WeightedGraph::from_edges(2, {});
  std::ostringstream os;
  write_dot_graph(os, g);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("v0;"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace netpart::io
