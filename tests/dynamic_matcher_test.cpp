#include "igmatch/dynamic_matcher.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "circuits/rng.hpp"
#include "obs/metrics.hpp"

namespace netpart {
namespace {

/// From-scratch maximum matching (Kuhn's algorithm) on the bipartite graph
/// induced by the current side assignment — the reference the incremental
/// matcher is validated against.
std::int32_t reference_matching_size(const WeightedGraph& g,
                                     const std::vector<NetSide>& side) {
  const std::int32_t n = g.num_vertices();
  std::vector<std::int32_t> match(static_cast<std::size_t>(n), -1);
  std::vector<char> used(static_cast<std::size_t>(n), 0);

  // Recursive try-kuhn from a left vertex.
  const auto try_augment = [&](auto&& self, std::int32_t x) -> bool {
    for (const std::int32_t y : g.neighbors(x)) {
      if (side[static_cast<std::size_t>(y)] != NetSide::kRight) continue;
      if (used[static_cast<std::size_t>(y)]) continue;
      used[static_cast<std::size_t>(y)] = 1;
      if (match[static_cast<std::size_t>(y)] == -1 ||
          self(self, match[static_cast<std::size_t>(y)])) {
        match[static_cast<std::size_t>(y)] = x;
        return true;
      }
    }
    return false;
  };

  std::int32_t size = 0;
  for (std::int32_t x = 0; x < n; ++x) {
    if (side[static_cast<std::size_t>(x)] != NetSide::kLeft) continue;
    std::fill(used.begin(), used.end(), 0);
    if (try_augment(try_augment, x)) ++size;
  }
  return size;
}

/// Random conflict graph over `n` vertices with edge probability `p`.
WeightedGraph random_graph(std::int32_t n, double p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<GraphEdge> edges;
  for (std::int32_t i = 0; i < n; ++i)
    for (std::int32_t j = i + 1; j < n; ++j)
      if (rng.uniform() < p) edges.push_back({i, j, 1.0});
  return WeightedGraph::from_edges(n, std::move(edges));
}

TEST(DynamicMatcher, StartsAllLeftEmptyMatching) {
  const WeightedGraph g = random_graph(6, 0.5, 1);
  const DynamicBipartiteMatcher matcher(g);
  EXPECT_EQ(matcher.matching_size(), 0);
  EXPECT_EQ(matcher.left_count(), 6);
  for (std::int32_t v = 0; v < 6; ++v) {
    EXPECT_EQ(matcher.side_of(v), NetSide::kLeft);
    EXPECT_EQ(matcher.match_of(v), -1);
  }
}

TEST(DynamicMatcher, SingleEdgeMatches) {
  const WeightedGraph g = WeightedGraph::from_edges(2, {{0, 1, 1.0}});
  DynamicBipartiteMatcher matcher(g);
  matcher.move_to_right(1);
  EXPECT_EQ(matcher.matching_size(), 1);
  EXPECT_EQ(matcher.match_of(0), 1);
  EXPECT_EQ(matcher.match_of(1), 0);
}

TEST(DynamicMatcher, MoveOfMatchedVertexRepairs) {
  // Path 0-1-2: move 1 right (matches 0 or 2), then move its partner.
  const WeightedGraph g =
      WeightedGraph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  DynamicBipartiteMatcher matcher(g);
  matcher.move_to_right(1);
  EXPECT_EQ(matcher.matching_size(), 1);
  const std::int32_t partner = matcher.match_of(1);
  matcher.move_to_right(partner);
  // The other L-neighbor of 1 must now be matched to it.
  EXPECT_EQ(matcher.matching_size(), 1);
  EXPECT_NE(matcher.match_of(1), -1);
  EXPECT_NE(matcher.match_of(1), partner);
}

TEST(DynamicMatcher, RejectsDoubleMoveAndBadIndex) {
  const WeightedGraph g = WeightedGraph::from_edges(2, {{0, 1, 1.0}});
  DynamicBipartiteMatcher matcher(g);
  matcher.move_to_right(0);
  EXPECT_THROW(matcher.move_to_right(0), std::logic_error);
  EXPECT_THROW(matcher.move_to_right(5), std::out_of_range);
}

TEST(DynamicMatcher, AllMovedRightEmptiesBipartiteGraph) {
  const WeightedGraph g = random_graph(8, 0.6, 2);
  DynamicBipartiteMatcher matcher(g);
  for (std::int32_t v = 0; v < 8; ++v) matcher.move_to_right(v);
  EXPECT_EQ(matcher.matching_size(), 0);
  EXPECT_EQ(matcher.left_count(), 0);
}

/// Parametrized sweep: the incremental matching must equal a from-scratch
/// maximum matching after EVERY move, across random graphs of different
/// densities.
class MatcherSweepTest
    : public ::testing::TestWithParam<std::tuple<std::int32_t, double>> {};

TEST_P(MatcherSweepTest, IncrementalEqualsFromScratchEverywhere) {
  const auto [n, density] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const WeightedGraph g = random_graph(n, density, seed * 77 + 13);
    DynamicBipartiteMatcher matcher(g);
    std::vector<NetSide> side(static_cast<std::size_t>(n), NetSide::kLeft);
    // Move in a seed-dependent order.
    Xoshiro256 rng(seed);
    std::vector<std::int32_t> order(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i)
      order[static_cast<std::size_t>(i)] = i;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[static_cast<std::size_t>(rng.below(i))]);

    for (const std::int32_t v : order) {
      matcher.move_to_right(v);
      side[static_cast<std::size_t>(v)] = NetSide::kRight;
      ASSERT_EQ(matcher.matching_size(), reference_matching_size(g, side))
          << "n=" << n << " density=" << density << " seed=" << seed
          << " after moving " << v;
      // The matching stored must be a valid matching in B.
      for (std::int32_t x = 0; x < n; ++x) {
        const std::int32_t y = matcher.match_of(x);
        if (y == -1) continue;
        ASSERT_EQ(matcher.match_of(y), x);
        ASSERT_NE(matcher.side_of(x), matcher.side_of(y));
        ASSERT_GT(g.edge_weight(x, y), 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, MatcherSweepTest,
    ::testing::Combine(::testing::Values(6, 10, 16),
                       ::testing::Values(0.15, 0.35, 0.7)));

/// Classification invariants (König / Theorem 4-5 machinery) on random
/// graphs at random split points.
class ClassifyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifyTest, WinnerLoserCoreInvariants) {
  const std::uint64_t seed = GetParam();
  const std::int32_t n = 14;
  const WeightedGraph g = random_graph(n, 0.3, seed);
  DynamicBipartiteMatcher matcher(g);
  for (std::int32_t moved = 0; moved < n; ++moved) {
    matcher.move_to_right(moved);
    const std::vector<NetLabel> label = matcher.classify();

    std::int32_t losers = 0;
    std::int32_t core_left = 0;
    std::int32_t core_right = 0;
    for (std::int32_t v = 0; v < n; ++v) {
      const NetLabel l = label[static_cast<std::size_t>(v)];
      // Side consistency.
      if (matcher.side_of(v) == NetSide::kLeft)
        ASSERT_TRUE(l == NetLabel::kWinnerLeft || l == NetLabel::kLoserLeft ||
                    l == NetLabel::kCoreLeft);
      else
        ASSERT_TRUE(l == NetLabel::kWinnerRight ||
                    l == NetLabel::kLoserRight || l == NetLabel::kCoreRight);
      if (l == NetLabel::kLoserLeft || l == NetLabel::kLoserRight) ++losers;
      if (l == NetLabel::kCoreLeft) ++core_left;
      if (l == NetLabel::kCoreRight) ++core_right;
      // Losers and core vertices are always matched.
      if (l != NetLabel::kWinnerLeft && l != NetLabel::kWinnerRight)
        ASSERT_NE(matcher.match_of(v), -1);
    }
    // The core is perfectly matched within itself.
    ASSERT_EQ(core_left, core_right);
    for (std::int32_t v = 0; v < n; ++v) {
      if (label[static_cast<std::size_t>(v)] == NetLabel::kCoreLeft)
        ASSERT_EQ(label[static_cast<std::size_t>(matcher.match_of(v))],
                  NetLabel::kCoreRight);
    }
    // Theorem 5 accounting: losers + core pairs = matching size.
    ASSERT_EQ(losers + core_left, matcher.matching_size());

    // Winners form an independent set in B: no conflict edge between
    // a left winner and a right winner.
    for (std::int32_t x = 0; x < n; ++x) {
      if (label[static_cast<std::size_t>(x)] != NetLabel::kWinnerLeft)
        continue;
      for (const std::int32_t y : g.neighbors(x))
        ASSERT_NE(label[static_cast<std::size_t>(y)], NetLabel::kWinnerRight)
            << "B-edge between winners " << x << "," << y;
    }
    // Vertex-cover property (Theorem 4): every B-edge touches a loser or a
    // core vertex on each wholesale option.
    for (std::int32_t x = 0; x < n; ++x) {
      if (matcher.side_of(x) != NetSide::kLeft) continue;
      for (const std::int32_t y : g.neighbors(x)) {
        if (matcher.side_of(y) != NetSide::kRight) continue;
        const NetLabel lx = label[static_cast<std::size_t>(x)];
        const NetLabel ly = label[static_cast<std::size_t>(y)];
        const bool covered_by_losers = lx == NetLabel::kLoserLeft ||
                                       ly == NetLabel::kLoserRight;
        const bool covered_if_core_left_loses = covered_by_losers ||
                                                lx == NetLabel::kCoreLeft;
        const bool covered_if_core_right_loses = covered_by_losers ||
                                                 ly == NetLabel::kCoreRight;
        ASSERT_TRUE(covered_if_core_left_loses);
        ASSERT_TRUE(covered_if_core_right_loses);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Theorem 6 accounting: a full left-to-right sweep performs at most two
/// augmenting-path searches per move, so the total work over all |V| moves
/// is O(|V| * (|V| + |E|)) — NOT a from-scratch matching per split.  The
/// matcher exposes its own tallies precisely so this bound is testable.
TEST(DynamicMatcher, FullSweepWorkIsLinearInMovesTheorem6) {
  for (const auto& [n, density] :
       {std::pair<std::int32_t, double>{24, 0.15},
        std::pair<std::int32_t, double>{40, 0.3},
        std::pair<std::int32_t, double>{64, 0.6}}) {
    const WeightedGraph g = random_graph(n, density, 42);
    std::int64_t directed_edges = 0;
    for (std::int32_t v = 0; v < n; ++v)
      directed_edges += static_cast<std::int64_t>(g.neighbors(v).size());

    DynamicBipartiteMatcher matcher(g);
    EXPECT_EQ(matcher.augmenting_searches(), 0);
    for (std::int32_t v = 0; v < n; ++v) matcher.move_to_right(v);

    // At most two searches per move (one for the un-matching of the moved
    // vertex's partner, one for the moved vertex on its new side).
    EXPECT_LE(matcher.augmenting_searches(), 2 * std::int64_t{n})
        << "n=" << n << " density=" << density;
    // Each search finds at most one augmenting path.
    EXPECT_LE(matcher.augmenting_paths_found(), matcher.augmenting_searches());
    // One BFS scans each right vertex's adjacency at most once, plus the
    // root's: per-search work is O(|V| + |E|).
    EXPECT_LE(matcher.edges_scanned(),
              matcher.augmenting_searches() * (directed_edges + n))
        << "n=" << n << " density=" << density;
  }
}

#if NETPART_OBS_ENABLED
/// The obs counters must agree with the matcher's own tallies.
TEST(DynamicMatcher, ObsCountersMatchMatcherTallies) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.reset();
  registry.set_enabled(true);
  const std::int32_t n = 32;
  const WeightedGraph g = random_graph(n, 0.4, 7);
  DynamicBipartiteMatcher matcher(g);
  for (std::int32_t v = 0; v < n; ++v) matcher.move_to_right(v);
  const obs::MetricsSnapshot snap = registry.snapshot();
  registry.set_enabled(false);
  registry.reset();
  EXPECT_EQ(snap.counter("igmatch.matching_repairs"), n);
  EXPECT_EQ(snap.counter("igmatch.augmenting_paths"),
            matcher.augmenting_paths_found());
  EXPECT_EQ(snap.counter("igmatch.bfs_edges_scanned"),
            matcher.edges_scanned());
}
#endif

}  // namespace
}  // namespace netpart
