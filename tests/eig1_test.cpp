#include "spectral/eig1.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

/// Two clusters of modules densely tied by 2-pin nets, one weak bridge.
Hypergraph dumbbell(std::int32_t cluster) {
  HypergraphBuilder b(2 * cluster);
  for (std::int32_t i = 0; i < cluster; ++i)
    for (std::int32_t j = i + 1; j < cluster; ++j) {
      b.add_net({i, j});
      b.add_net({cluster + i, cluster + j});
    }
  b.add_net({cluster - 1, cluster});
  return b.build();
}

TEST(Eig1, SeparatesDumbbell) {
  const Hypergraph h = dumbbell(5);
  const Eig1Result r = eig1_partition(h);
  EXPECT_TRUE(r.eigen_converged);
  EXPECT_EQ(r.sweep.nets_cut, 1);
  EXPECT_EQ(r.sweep.partition.size(Side::kLeft), 5);
  // All of cluster 0 on one side.
  const Side s0 = r.sweep.partition.side(0);
  for (std::int32_t i = 1; i < 5; ++i)
    EXPECT_EQ(r.sweep.partition.side(i), s0);
}

TEST(Eig1, Theorem1LowerBoundHolds) {
  // c >= lambda_2 / n for the clique-model graph's optimal ratio cut; the
  // heuristic cut found is an upper bound on c, so the chain
  // lambda2/n <= c <= found must hold.  NOTE: the theorem is for the
  // *graph* cut; the hypergraph net cut counts each net once, which can
  // only be <= the clique-model weighted edge cut for unit 2-pin nets, so
  // we check on a 2-pin-net-only instance where the two coincide.
  const Hypergraph h = dumbbell(6);
  const Eig1Result r = eig1_partition(h);
  EXPECT_TRUE(r.eigen_converged);
  EXPECT_GE(r.sweep.ratio, r.ratio_cut_lower_bound - 1e-9);
}

TEST(Eig1, ResultInternallyConsistent) {
  GeneratorConfig c;
  c.name = "eig1-consistency";
  c.num_modules = 120;
  c.num_nets = 140;
  c.leaf_max = 12;
  const Hypergraph h = generate_circuit(c).hypergraph;
  const Eig1Result r = eig1_partition(h);
  EXPECT_TRUE(r.eigen_converged);
  EXPECT_TRUE(r.sweep.partition.is_proper());
  EXPECT_EQ(r.sweep.nets_cut, net_cut(h, r.sweep.partition));
  EXPECT_DOUBLE_EQ(r.sweep.ratio, ratio_cut(h, r.sweep.partition));
}

TEST(SpectralNetOrdering, IsPermutationOfNets) {
  const Hypergraph h = dumbbell(4);
  const NetOrdering ordering = spectral_net_ordering(h);
  EXPECT_TRUE(ordering.eigen_converged);
  ASSERT_EQ(static_cast<std::int32_t>(ordering.order.size()), h.num_nets());
  std::vector<char> seen(static_cast<std::size_t>(h.num_nets()), 0);
  for (const std::int32_t n : ordering.order) {
    ASSERT_GE(n, 0);
    ASSERT_LT(n, h.num_nets());
    ASSERT_FALSE(seen[static_cast<std::size_t>(n)]);
    seen[static_cast<std::size_t>(n)] = 1;
  }
}

TEST(SpectralNetOrdering, ClustersNetsOfDumbbell) {
  // In the dumbbell, nets of the two cliques must occupy the two ends of
  // the ordering; the bridge net sits wherever, but no interleaving of
  // left-clique and right-clique nets should occur.
  const std::int32_t cluster = 5;
  const Hypergraph h = dumbbell(cluster);
  const NetOrdering ordering = spectral_net_ordering(h);
  // Net ids: [0, 2*C(5,2)) alternate cluster0/cluster1; bridge is last.
  const NetId bridge = h.num_nets() - 1;
  std::vector<int> side_sequence;
  for (const std::int32_t n : ordering.order) {
    if (n == bridge) continue;
    side_sequence.push_back(n % 2);
  }
  // The sequence must be 0...01...1 or 1...10...0: exactly one switch.
  int switches = 0;
  for (std::size_t i = 1; i < side_sequence.size(); ++i)
    if (side_sequence[i] != side_sequence[i - 1]) ++switches;
  EXPECT_EQ(switches, 1);
}

}  // namespace
}  // namespace netpart
