#include "linalg/fiedler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/weighted_graph.hpp"
#include "linalg/vector_ops.hpp"

namespace netpart {
namespace {

using linalg::FiedlerResult;
using linalg::fiedler_pair;
using linalg::sorted_order;

/// Path graph P_n (unit weights).
WeightedGraph path_graph(std::int32_t n) {
  std::vector<GraphEdge> edges;
  for (std::int32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  return WeightedGraph::from_edges(n, std::move(edges));
}

TEST(Fiedler, PathGraphLambda2Analytic) {
  // P_n Laplacian: lambda_2 = 2 - 2 cos(pi / n) = 4 sin^2(pi / 2n).
  const std::int32_t n = 12;
  const FiedlerResult r = fiedler_pair(path_graph(n).laplacian());
  EXPECT_TRUE(r.converged);
  const double expected = 2.0 - 2.0 * std::cos(M_PI / n);
  EXPECT_NEAR(r.lambda2, expected, 1e-8);
}

TEST(Fiedler, PathVectorIsMonotoneAcrossThePath) {
  // The Fiedler vector of a path is cos(pi (i + 1/2) / n) up to sign —
  // strictly monotone, so the sorted order is the path order (or its
  // reverse).
  const std::int32_t n = 10;
  const FiedlerResult r = fiedler_pair(path_graph(n).laplacian());
  const auto order = sorted_order(r.vector);
  bool forward = true;
  bool backward = true;
  for (std::int32_t i = 0; i < n; ++i) {
    forward &= order[static_cast<std::size_t>(i)] == i;
    backward &= order[static_cast<std::size_t>(i)] == n - 1 - i;
  }
  EXPECT_TRUE(forward || backward);
}

TEST(Fiedler, TwoCliquesWithBridgeSeparates) {
  // Two K4's joined by one edge; the Fiedler vector must put one clique
  // entirely on each side of zero.
  std::vector<GraphEdge> edges;
  for (std::int32_t i = 0; i < 4; ++i)
    for (std::int32_t j = i + 1; j < 4; ++j) {
      edges.push_back({i, j, 1.0});
      edges.push_back({i + 4, j + 4, 1.0});
    }
  edges.push_back({3, 4, 1.0});
  const WeightedGraph g = WeightedGraph::from_edges(8, std::move(edges));
  const FiedlerResult r = fiedler_pair(g.laplacian());
  EXPECT_TRUE(r.converged);
  for (std::int32_t i = 0; i < 4; ++i)
    for (std::int32_t j = 4; j < 8; ++j)
      EXPECT_LT(r.vector[static_cast<std::size_t>(i)] *
                    r.vector[static_cast<std::size_t>(j)],
                0.0)
          << i << " vs " << j;
}

TEST(Fiedler, VectorOrthogonalToOnes) {
  const FiedlerResult r = fiedler_pair(path_graph(9).laplacian());
  double sum = 0.0;
  for (const double v : r.vector) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-7);
}

TEST(Fiedler, SingletonGraph) {
  const WeightedGraph g = WeightedGraph::from_edges(1, {});
  const FiedlerResult r = fiedler_pair(g.laplacian());
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.lambda2, 0.0);
}

TEST(Fiedler, CompleteGraphLambda2EqualsN) {
  // K_n Laplacian: lambda_2 = ... = lambda_n = n.
  const std::int32_t n = 7;
  std::vector<GraphEdge> edges;
  for (std::int32_t i = 0; i < n; ++i)
    for (std::int32_t j = i + 1; j < n; ++j) edges.push_back({i, j, 1.0});
  const WeightedGraph g = WeightedGraph::from_edges(n, std::move(edges));
  const FiedlerResult r = fiedler_pair(g.laplacian());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.lambda2, static_cast<double>(n), 1e-7);
}

TEST(SortedOrder, TiesBrokenByIndex) {
  const auto order = sorted_order({1.0, 0.0, 1.0, 0.0});
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 0);
  EXPECT_EQ(order[3], 2);
}

TEST(SortedOrder, EmptyInput) {
  EXPECT_TRUE(sorted_order({}).empty());
}

}  // namespace
}  // namespace netpart
