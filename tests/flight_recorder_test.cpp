/// Tests for the crash-safe flight recorder (src/obs/flight_recorder.*):
/// seqlock ring integrity under concurrent writers (the TSan pass in
/// check.sh runs this binary instrumented), wrap semantics, the
/// deterministic NDJSON line format, and the async-signal-safe fd dump.
/// The signal path itself (SIGQUIT on a live daemon) is covered end to end
/// in server_test and scripts/check.sh postmortem_smoke.

#include "obs/flight_recorder.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace netpart::obs {
namespace {

/// The recorder is a process singleton; configure(0) first so records from
/// a previous test never leak into this one (same-capacity reconfigures
/// are no-ops by design).
FlightRecorder& fresh(std::size_t capacity) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.configure(0);
  fr.configure(capacity);
  return fr;
}

/// Every field derived from one seed, so a torn slot (words from two
/// different writers) cannot pass expect_consistent below.
FlightRecord make_record(std::uint64_t seed) {
  FlightRecord r;
  r.trace_hi = seed * 0x9e3779b97f4a7c15ULL;
  r.trace_lo = ~seed;
  r.span_id = seed ^ 0xdeadbeefULL;
  r.request_id = static_cast<std::int64_t>(seed);
  r.wall_ms = static_cast<std::int64_t>(seed * 3);
  r.lane = static_cast<std::int32_t>(seed % 7);
  r.cls = static_cast<std::uint8_t>(seed % 3);
  r.outcome = static_cast<std::uint8_t>(FlightOutcome::kOk);
  r.set_op("partition");
  for (std::size_t s = 0; s < kNumStages; ++s)
    r.stage_us[s] = static_cast<std::int32_t>((seed + s) & 0xffff);
  return r;
}

void expect_consistent(const FlightRecord& r) {
  const auto seed = static_cast<std::uint64_t>(r.request_id);
  EXPECT_EQ(r.trace_hi, seed * 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(r.trace_lo, ~seed);
  EXPECT_EQ(r.span_id, seed ^ 0xdeadbeefULL);
  EXPECT_EQ(r.wall_ms, static_cast<std::int64_t>(seed * 3));
  EXPECT_EQ(r.lane, static_cast<std::int32_t>(seed % 7));
  EXPECT_EQ(r.cls, static_cast<std::uint8_t>(seed % 3));
  EXPECT_STREQ(r.op, "partition");
  for (std::size_t s = 0; s < kNumStages; ++s)
    EXPECT_EQ(r.stage_us[s], static_cast<std::int32_t>((seed + s) & 0xffff));
}

TEST(FlightRecorder, ConfigureZeroDisables) {
  FlightRecorder& fr = fresh(0);
  EXPECT_FALSE(fr.enabled());
  EXPECT_EQ(fr.capacity(), 0u);
  fr.record(make_record(1));
  fr.note("ignored", 42);
  EXPECT_TRUE(fr.snapshot_records().empty());
  EXPECT_TRUE(fr.snapshot_notes().empty());
  EXPECT_EQ(fr.records_to_json(), "[]");
  EXPECT_EQ(fr.notes_to_json(), "[]");
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder& fr = fresh(5);
  EXPECT_TRUE(fr.enabled());
  EXPECT_EQ(fr.capacity(), 8u);
}

TEST(FlightRecorder, RecordSnapshotRoundTrip) {
  FlightRecorder& fr = fresh(8);
  for (std::uint64_t seed = 10; seed < 15; ++seed)
    fr.record(make_record(seed));
  const std::vector<FlightRecord> got = fr.snapshot_records();
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].request_id, static_cast<std::int64_t>(10 + i))
        << "snapshot must be oldest-first";
    expect_consistent(got[i]);
  }
  EXPECT_EQ(fr.recorded(), 5u);
  EXPECT_EQ(fr.overwritten(), 0u);
}

TEST(FlightRecorder, WrapKeepsNewest) {
  FlightRecorder& fr = fresh(8);
  for (std::uint64_t seed = 0; seed < 20; ++seed)
    fr.record(make_record(seed));
  const std::vector<FlightRecord> got = fr.snapshot_records();
  ASSERT_EQ(got.size(), 8u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].request_id, static_cast<std::int64_t>(12 + i));
    expect_consistent(got[i]);
  }
  EXPECT_EQ(fr.recorded(), 20u);
  EXPECT_EQ(fr.overwritten(), 12u);
}

TEST(FlightRecorder, OpAndKindNamesTruncateSafely) {
  FlightRecord r;
  r.set_op("a-very-long-operation-name");
  EXPECT_EQ(std::strlen(r.op), sizeof(r.op) - 1);
  EXPECT_EQ(std::string(r.op), std::string("a-very-long-operation-name")
                                   .substr(0, sizeof(r.op) - 1));
  FlightNote n;
  n.set_kind("an-even-longer-note-kind-label-that-wraps");
  EXPECT_EQ(std::strlen(n.kind), sizeof(n.kind) - 1);
}

TEST(FlightRecorder, JsonLineFormatIsExact) {
  FlightRecorder& fr = fresh(4);
  FlightRecord r;
  r.trace_hi = 0x0011223344556677ULL;
  r.trace_lo = 0x8899aabbccddeeffULL;
  r.span_id = 0x0123456789abcdefULL;
  r.request_id = 7;
  r.wall_ms = 1234;
  r.lane = 2;
  r.cls = 1;
  r.outcome = static_cast<std::uint8_t>(FlightOutcome::kDeadline);
  r.set_op("partition");
  r.stage_us = {1, 2, 3, 4, 5, 6};
  fr.record(r);
  EXPECT_EQ(fr.records_to_json(),
            "[{\"type\":\"request\","
            "\"trace_id\":\"00112233445566778899aabbccddeeff\","
            "\"span_id\":\"0123456789abcdef\",\"id\":7,\"ts_ms\":1234,"
            "\"lane\":2,\"class\":\"warm\",\"outcome\":\"deadline\","
            "\"op\":\"partition\",\"stages_us\":{\"parse\":1,\"admission\":2,"
            "\"queue\":3,\"execute\":4,\"serialize\":5,\"write\":6}}]");
}

TEST(FlightRecorder, UntracedRecordRendersNullTraceId) {
  FlightRecorder& fr = fresh(4);
  FlightRecord r;
  r.request_id = 3;
  r.set_op("ping");
  fr.record(r);
  const std::string json = fr.records_to_json();
  EXPECT_NE(json.find("\"trace_id\":null,\"span_id\":null"),
            std::string::npos)
      << json;
}

TEST(FlightRecorder, NotesRoundTrip) {
  FlightRecorder& fr = fresh(16);
  fr.note("server.start", 4);
  fr.note("sessions.evicted", 2);
  const std::vector<FlightNote> notes = fr.snapshot_notes();
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_STREQ(notes[0].kind, "server.start");
  EXPECT_EQ(notes[0].value, 4);
  EXPECT_STREQ(notes[1].kind, "sessions.evicted");
  EXPECT_EQ(notes[1].value, 2);
  EXPECT_NE(fr.notes_to_json().find("\"kind\":\"sessions.evicted\","
                                    "\"value\":2"),
            std::string::npos);
}

/// Seqlock integrity: hammer the ring from several writers while a reader
/// drains concurrently.  Every record a drain returns must be internally
/// consistent — a torn slot must be discarded, never surfaced.  The TSan
/// build of this test is the race-freedom proof for the relaxed-atomic
/// payload design.
TEST(FlightRecorder, ConcurrentWritersNeverSurfaceTornRecords) {
  FlightRecorder& fr = fresh(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 10000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};

  std::thread reader([&] {
    const auto drain = [&] {
      for (const FlightRecord& r : fr.snapshot_records()) {
        expect_consistent(r);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    };
    while (!done.load(std::memory_order_acquire)) drain();
    // While writers are hammering the ring every slot can be overwritten
    // mid-drain, so concurrent drains may legitimately discard everything.
    // `done` is set after the writers join; one post-quiescence drain is
    // guaranteed to surface the full ring.
    drain();
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&fr, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * 1000000;
      for (std::uint64_t i = 0; i < kPerWriter; ++i)
        fr.record(make_record(base + i));
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(fr.recorded(), kWriters * kPerWriter);
  const std::vector<FlightRecord> final_records = fr.snapshot_records();
  // With all writers quiescent every surviving slot validates.
  EXPECT_EQ(final_records.size(), 64u);
  for (const FlightRecord& r : final_records) expect_consistent(r);
  EXPECT_GT(reads.load(), 0u) << "reader never observed a record";
}

TEST(FlightRecorder, DumpToFdWritesHeaderAndNdjsonLines) {
  FlightRecorder& fr = fresh(8);
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    fr.record(make_record(seed));
  fr.note("server.start", 1);

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  const std::int64_t bytes = fr.dump_to_fd(fileno(tmp), 9);
  ASSERT_GT(bytes, 0);

  std::rewind(tmp);
  std::string body(static_cast<std::size_t>(bytes), '\0');
  ASSERT_EQ(std::fread(body.data(), 1, body.size(), tmp), body.size());
  std::fclose(tmp);

  // One header plus one line per record and note, each '\n'-terminated.
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = body.find('\n'); nl != std::string::npos;
       nl = body.find('\n', start)) {
    lines.push_back(body.substr(start, nl - start));
    start = nl + 1;
  }
  EXPECT_EQ(start, body.size()) << "dump must end with a newline";
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[0].find("{\"type\":\"postmortem\",\"signal\":9,"),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"recorded\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"capacity\":8"), std::string::npos);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(lines[static_cast<std::size_t>(i)].find("{\"type\":\"request\""),
              0u);
    EXPECT_NE(lines[static_cast<std::size_t>(i)].find(
                  "\"id\":" + std::to_string(i) + ","),
              std::string::npos);
  }
  EXPECT_EQ(lines[4].find("{\"type\":\"note\""), 0u);
  EXPECT_NE(lines[4].find("\"kind\":\"server.start\""), std::string::npos);
}

TEST(FlightRecorder, ReconfigureSameCapacityKeepsRecords) {
  FlightRecorder& fr = fresh(8);
  fr.record(make_record(42));
  fr.configure(8);  // server restart with unchanged options: a no-op
  const std::vector<FlightRecord> got = fr.snapshot_records();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].request_id, 42);
}

}  // namespace
}  // namespace netpart::obs
