#include "fm/fm_engine.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"
#include "fm/fm_partition.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

Hypergraph dumbbell() {
  HypergraphBuilder b(8);
  for (std::int32_t i = 0; i < 4; ++i)
    for (std::int32_t j = i + 1; j < 4; ++j) {
      b.add_net({i, j});
      b.add_net({4 + i, 4 + j});
    }
  b.add_net({3, 4});
  return b.build();
}

TEST(FmEngine, ResetTracksCut) {
  const Hypergraph h = dumbbell();
  FmEngine engine(h);
  Partition p(8);
  for (std::int32_t m = 4; m < 8; ++m) p.assign(m, Side::kRight);
  engine.reset(p);
  EXPECT_EQ(engine.cut(), net_cut(h, p));
  EXPECT_EQ(engine.cut(), 1);
}

TEST(FmEngine, MinCutPassNeverWorsens) {
  const Hypergraph h = dumbbell();
  FmEngine engine(h);
  engine.reset(random_balanced_partition(8, 7));
  const std::int32_t before = engine.cut();
  engine.pass_min_cut(3, 5);
  EXPECT_LE(engine.cut(), before);
  EXPECT_EQ(engine.cut(), net_cut(h, engine.partition()));
  EXPECT_GE(engine.partition().size(Side::kLeft), 3);
  EXPECT_LE(engine.partition().size(Side::kLeft), 5);
}

TEST(FmEngine, RecoversDumbbellOptimum) {
  const Hypergraph h = dumbbell();
  FmEngine engine(h);
  // Worst-case start: interleaved.
  Partition p(8);
  for (std::int32_t m = 0; m < 8; m += 2) p.assign(m, Side::kRight);
  engine.reset(p);
  for (int pass = 0; pass < 10; ++pass)
    if (!engine.pass_min_cut(4, 4).improved) break;
  EXPECT_EQ(engine.cut(), 1);
}

TEST(FmEngine, RatioPassNeverWorsensRatio) {
  GeneratorConfig c;
  c.name = "fm-ratio-pass";
  c.num_modules = 100;
  c.num_nets = 120;
  c.leaf_max = 10;
  const Hypergraph h = generate_circuit(c).hypergraph;
  FmEngine engine(h);
  engine.reset(random_balanced_partition(100, 3));
  const double before = engine.ratio();
  engine.pass_ratio_cut();
  EXPECT_LE(engine.ratio(), before + 1e-12);
  EXPECT_EQ(engine.cut(), net_cut(h, engine.partition()));
}

TEST(FmEngine, RatioPassKeepsPartitionProper) {
  const Hypergraph h = dumbbell();
  FmEngine engine(h);
  engine.reset(random_balanced_partition(8, 5));
  for (int pass = 0; pass < 5; ++pass) engine.pass_ratio_cut();
  EXPECT_TRUE(engine.partition().is_proper());
}

TEST(FmEngine, PassResultAccounting) {
  const Hypergraph h = dumbbell();
  FmEngine engine(h);
  Partition p(8);
  for (std::int32_t m = 0; m < 8; m += 2) p.assign(m, Side::kRight);
  engine.reset(p);
  const FmPassResult r = engine.pass_min_cut(4, 4);
  EXPECT_GT(r.moves_tried, 0);
  EXPECT_LE(r.prefix_kept, r.moves_tried);
  EXPECT_EQ(r.improved, r.prefix_kept > 0);
}

TEST(FmEngine, FixedModulesNeverMove) {
  const Hypergraph h = dumbbell();
  FmEngine engine(h);
  // Adversarial start: whole dumbbell on one side except module 0, with
  // module 0 pinned to the right.
  Partition p(8);
  p.assign(0, Side::kRight);
  engine.reset(p);
  engine.fix_module(0);
  EXPECT_TRUE(engine.is_fixed(0));
  for (int pass = 0; pass < 6; ++pass) engine.pass_ratio_cut();
  EXPECT_EQ(engine.partition().side(0), Side::kRight);
}

TEST(FmEngine, ResetClearsFixedSet) {
  const Hypergraph h = dumbbell();
  FmEngine engine(h);
  engine.reset(Partition(8));
  engine.fix_module(3);
  engine.reset(Partition(8));
  EXPECT_FALSE(engine.is_fixed(3));
}

TEST(FmEngine, TerminalsSteerTheRefinement) {
  // Pin one module of each clique to opposite sides, start from the
  // all-left partition: the pass must rebuild the natural split around the
  // terminals.
  const Hypergraph h = dumbbell();
  FmEngine engine(h);
  Partition p(8);
  p.assign(4, Side::kRight);
  engine.reset(p);
  engine.fix_module(0);   // left clique anchor stays left
  engine.fix_module(4);   // right clique anchor stays right
  for (int pass = 0; pass < 8; ++pass)
    if (!engine.pass_ratio_cut().improved) break;
  EXPECT_EQ(engine.cut(), 1);
  EXPECT_EQ(engine.partition().side(0), Side::kLeft);
  EXPECT_EQ(engine.partition().side(4), Side::kRight);
}

TEST(FmEngine, RejectsBadInputs) {
  const Hypergraph h = dumbbell();
  FmEngine engine(h);
  EXPECT_THROW(engine.reset(Partition(5)), std::invalid_argument);
  engine.reset(Partition(8));
  EXPECT_THROW(engine.pass_min_cut(5, 3), std::invalid_argument);
  EXPECT_THROW(engine.pass_min_cut(-1, 4), std::invalid_argument);
}

TEST(FmEngine, CutStaysConsistentAcrossManyPasses) {
  GeneratorConfig c;
  c.name = "fm-consistency";
  c.num_modules = 90;
  c.num_nets = 110;
  c.leaf_max = 10;
  const Hypergraph h = generate_circuit(c).hypergraph;
  FmEngine engine(h);
  engine.reset(random_balanced_partition(90, 11));
  for (int pass = 0; pass < 8; ++pass) {
    engine.pass_min_cut(30, 60);
    ASSERT_EQ(engine.cut(), net_cut(h, engine.partition())) << pass;
  }
}

}  // namespace
}  // namespace netpart
