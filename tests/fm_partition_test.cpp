#include "fm/fm_partition.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

Hypergraph small_circuit(const char* name) {
  GeneratorConfig c;
  c.name = name;
  c.num_modules = 120;
  c.num_nets = 140;
  c.leaf_max = 12;
  return generate_circuit(c).hypergraph;
}

TEST(RandomBalancedPartition, IsBalancedAndSeeded) {
  const Partition a = random_balanced_partition(101, 5);
  EXPECT_EQ(a.size(Side::kLeft), 51);
  EXPECT_EQ(a.size(Side::kRight), 50);
  const Partition b = random_balanced_partition(101, 5);
  EXPECT_EQ(a, b);
  const Partition c = random_balanced_partition(101, 6);
  EXPECT_FALSE(a == c);
}

TEST(RatioCutFm, ProducesConsistentResult) {
  const Hypergraph h = small_circuit("fm-driver-ratio");
  FmOptions options;
  options.num_starts = 4;
  const FmRunResult r = ratio_cut_fm(h, options);
  EXPECT_TRUE(r.partition.is_proper());
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
  EXPECT_DOUBLE_EQ(r.ratio, ratio_cut(h, r.partition));
  EXPECT_EQ(r.starts_run, 4);
  EXPECT_GE(r.total_passes, 4);
}

TEST(RatioCutFm, MoreStartsNeverWorse) {
  const Hypergraph h = small_circuit("fm-driver-starts");
  FmOptions few;
  few.num_starts = 1;
  FmOptions many;
  many.num_starts = 6;
  const FmRunResult a = ratio_cut_fm(h, few);
  const FmRunResult b = ratio_cut_fm(h, many);
  // The first start of `many` is identical to `few`'s single start, so the
  // best over six starts cannot be worse.
  EXPECT_LE(b.ratio, a.ratio + 1e-12);
}

TEST(MinCutBisection, RespectsBalanceWindow) {
  const Hypergraph h = small_circuit("fm-driver-bisect");
  FmOptions options;
  options.num_starts = 3;
  options.balance_tolerance = 0.10;
  const FmRunResult r = fm_min_cut_bisection(h, options);
  const std::int32_t n = h.num_modules();
  const std::int32_t deviation = std::max(
      1, static_cast<std::int32_t>(options.balance_tolerance * n / 2.0));
  EXPECT_GE(r.partition.size(Side::kLeft), n / 2 - deviation);
  EXPECT_LE(r.partition.size(Side::kLeft), (n + 1) / 2 + deviation);
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
}

TEST(MinCutBisection, BeatsRandomStart) {
  const Hypergraph h = small_circuit("fm-driver-improves");
  const Partition random_start = random_balanced_partition(
      h.num_modules(), 0xC0FFEEULL);
  const std::int32_t random_cut = net_cut(h, random_start);
  FmOptions options;
  options.num_starts = 3;
  const FmRunResult r = fm_min_cut_bisection(h, options);
  EXPECT_LT(r.nets_cut, random_cut);
}

TEST(FmDrivers, DeterministicForFixedSeed) {
  const Hypergraph h = small_circuit("fm-driver-det");
  FmOptions options;
  options.num_starts = 2;
  options.seed = 42;
  const FmRunResult a = ratio_cut_fm(h, options);
  const FmRunResult b = ratio_cut_fm(h, options);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.nets_cut, b.nets_cut);
}

TEST(FmDrivers, ParallelStartsIdenticalToSequential) {
  // The multi-start result must not depend on the thread count: starts are
  // independently seeded and ties break by start index.
  const Hypergraph h = small_circuit("fm-driver-parallel");
  FmOptions sequential;
  sequential.num_starts = 6;
  sequential.num_threads = 1;
  FmOptions parallel = sequential;
  parallel.num_threads = 4;
  const FmRunResult a = ratio_cut_fm(h, sequential);
  const FmRunResult b = ratio_cut_fm(h, parallel);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.nets_cut, b.nets_cut);
  EXPECT_EQ(a.total_passes, b.total_passes);

  const FmRunResult c = fm_min_cut_bisection(h, sequential);
  const FmRunResult d = fm_min_cut_bisection(h, parallel);
  EXPECT_EQ(c.partition, d.partition);
}

TEST(FmDrivers, MoreThreadsThanStartsIsSafe) {
  const Hypergraph h = small_circuit("fm-driver-overthread");
  FmOptions options;
  options.num_starts = 2;
  options.num_threads = 16;
  const FmRunResult r = ratio_cut_fm(h, options);
  EXPECT_EQ(r.starts_run, 2);
  EXPECT_TRUE(r.partition.is_proper());
}

TEST(FmDrivers, TinyInstanceSafe) {
  HypergraphBuilder b(1);
  b.add_net({0});
  const FmRunResult r = ratio_cut_fm(b.build());
  EXPECT_EQ(r.nets_cut, 0);
}

}  // namespace
}  // namespace netpart
