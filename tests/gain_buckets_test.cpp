#include "fm/gain_buckets.hpp"

#include <gtest/gtest.h>

namespace netpart {
namespace {

TEST(GainBuckets, EmptyInitially) {
  const GainBuckets b(4, 3);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0);
  EXPECT_EQ(b.max_item(), -1);
  EXPECT_FALSE(b.contains(0));
}

TEST(GainBuckets, InsertAndMax) {
  GainBuckets b(4, 3);
  b.insert(0, 1);
  b.insert(1, -2);
  b.insert(2, 3);
  EXPECT_EQ(b.size(), 3);
  EXPECT_EQ(b.max_item(), 2);
  EXPECT_EQ(b.max_gain(), 3);
  EXPECT_EQ(b.gain_of(1), -2);
}

TEST(GainBuckets, LifoWithinBucket) {
  GainBuckets b(4, 2);
  b.insert(0, 1);
  b.insert(1, 1);
  b.insert(2, 1);
  EXPECT_EQ(b.max_item(), 2);  // most recent first
  b.remove(2);
  EXPECT_EQ(b.max_item(), 1);
}

TEST(GainBuckets, RemoveRelinksList) {
  GainBuckets b(5, 2);
  b.insert(0, 0);
  b.insert(1, 0);
  b.insert(2, 0);
  b.remove(1);  // middle of the chain
  EXPECT_FALSE(b.contains(1));
  EXPECT_EQ(b.size(), 2);
  b.remove(2);  // head
  EXPECT_EQ(b.max_item(), 0);
  b.remove(0);  // tail / last
  EXPECT_TRUE(b.empty());
}

TEST(GainBuckets, MaxPointerDescends) {
  GainBuckets b(3, 5);
  b.insert(0, 5);
  b.insert(1, -5);
  b.remove(0);
  EXPECT_EQ(b.max_item(), 1);
  EXPECT_EQ(b.max_gain(), -5);
  // Re-raising the max works after the lazy pointer descended.
  b.insert(2, 2);
  EXPECT_EQ(b.max_item(), 2);
}

TEST(GainBuckets, UpdateMovesBuckets) {
  GainBuckets b(3, 4);
  b.insert(0, 0);
  b.insert(1, 2);
  b.update(0, 4);
  EXPECT_EQ(b.max_item(), 0);
  EXPECT_EQ(b.gain_of(0), 4);
}

TEST(GainBuckets, AdjustOnAbsentIsNoOp) {
  GainBuckets b(2, 3);
  b.adjust(0, 2);  // absent: ignored
  EXPECT_TRUE(b.empty());
  b.insert(0, 1);
  b.adjust(0, -2);
  EXPECT_EQ(b.gain_of(0), -1);
  b.adjust(0, 0);  // delta 0: no relink
  EXPECT_EQ(b.gain_of(0), -1);
}

TEST(GainBuckets, ErrorsOnMisuse) {
  GainBuckets b(2, 1);
  b.insert(0, 0);
  EXPECT_THROW(b.insert(0, 1), std::logic_error);
  EXPECT_THROW(b.remove(1), std::logic_error);
  EXPECT_THROW(b.insert(1, 2), std::out_of_range);  // gain beyond max
  EXPECT_THROW(GainBuckets(2, -1), std::invalid_argument);
}

TEST(GainBuckets, StressInsertRemoveKeepsConsistency) {
  const std::int32_t n = 50;
  GainBuckets b(n, 10);
  for (std::int32_t i = 0; i < n; ++i) b.insert(i, (i * 7) % 21 - 10);
  EXPECT_EQ(b.size(), n);
  // Remove every third item, then verify max by linear scan.
  for (std::int32_t i = 0; i < n; i += 3) b.remove(i);
  std::int32_t expected_max = -100;
  for (std::int32_t i = 0; i < n; ++i)
    if (b.contains(i)) expected_max = std::max(expected_max, b.gain_of(i));
  EXPECT_EQ(b.max_gain(), expected_max);
}

}  // namespace
}  // namespace netpart
