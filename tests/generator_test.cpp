#include "circuits/generator.hpp"

#include <gtest/gtest.h>

#include "hypergraph/stats.hpp"

namespace netpart {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig c;
  c.name = "gen-test";
  c.num_modules = 200;
  c.num_nets = 220;
  c.leaf_max = 16;
  return c;
}

TEST(Generator, ProducesRequestedCounts) {
  const GeneratedCircuit g = generate_circuit(small_config());
  EXPECT_EQ(g.hypergraph.num_modules(), 200);
  EXPECT_EQ(g.hypergraph.num_nets(), 220);
}

TEST(Generator, DeterministicForSameConfig) {
  const GeneratedCircuit a = generate_circuit(small_config());
  const GeneratedCircuit b = generate_circuit(small_config());
  ASSERT_EQ(a.hypergraph.num_nets(), b.hypergraph.num_nets());
  for (NetId n = 0; n < a.hypergraph.num_nets(); ++n) {
    const auto pa = a.hypergraph.pins(n);
    const auto pb = b.hypergraph.pins(n);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(Generator, DifferentNamesGiveDifferentCircuits) {
  GeneratorConfig c1 = small_config();
  GeneratorConfig c2 = small_config();
  c2.name = "gen-test-other";
  const GeneratedCircuit a = generate_circuit(c1);
  const GeneratedCircuit b = generate_circuit(c2);
  bool any_difference = false;
  for (NetId n = 0; n < a.hypergraph.num_nets() && !any_difference; ++n) {
    const auto pa = a.hypergraph.pins(n);
    const auto pb = b.hypergraph.pins(n);
    if (pa.size() != pb.size()) {
      any_difference = true;
      break;
    }
    for (std::size_t i = 0; i < pa.size(); ++i)
      if (pa[i] != pb[i]) {
        any_difference = true;
        break;
      }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, EveryModuleCovered) {
  const GeneratedCircuit g = generate_circuit(small_config());
  for (ModuleId m = 0; m < g.hypergraph.num_modules(); ++m)
    EXPECT_GE(g.hypergraph.module_degree(m), 1) << "module " << m;
}

TEST(Generator, HypergraphIsConnected) {
  const GeneratedCircuit g = generate_circuit(small_config());
  EXPECT_TRUE(g.hypergraph.is_connected());
}

TEST(Generator, TreeCoversModulesExactly) {
  const GeneratedCircuit g = generate_circuit(small_config());
  ASSERT_FALSE(g.tree.empty());
  const ClusterNode& root = g.tree[0];
  EXPECT_EQ(root.begin, 0);
  EXPECT_EQ(root.end, 200);
  EXPECT_EQ(root.parent, -1);
  // Children of every internal node tile its range exactly.
  for (const ClusterNode& node : g.tree) {
    if (node.is_leaf()) continue;
    std::int32_t at = node.begin;
    for (const std::int32_t c : node.children) {
      const ClusterNode& child = g.tree[static_cast<std::size_t>(c)];
      EXPECT_EQ(child.begin, at);
      EXPECT_EQ(child.parent, &node - g.tree.data());
      at = child.end;
    }
    EXPECT_EQ(at, node.end);
  }
}

TEST(Generator, LeavesRespectLeafMax) {
  const GeneratedCircuit g = generate_circuit(small_config());
  for (const ClusterNode& node : g.tree)
    if (node.is_leaf()) EXPECT_LE(node.size(), 16);
}

TEST(Generator, StructuralCountMatchesThrowBoundary) {
  GeneratorConfig c = small_config();
  const std::int32_t structural = structural_net_count(c);
  EXPECT_GT(structural, 0);
  EXPECT_LE(structural, c.num_nets);  // small_config must be feasible
  c.num_nets = structural - 1;
  EXPECT_THROW(generate_circuit(c), std::invalid_argument);
  c.num_nets = structural;
  const GeneratedCircuit g = generate_circuit(c);
  EXPECT_EQ(g.hypergraph.num_nets(), structural);
}

TEST(Generator, RejectsBadConfigs) {
  GeneratorConfig c = small_config();
  c.num_modules = 1;
  EXPECT_THROW(generate_circuit(c), std::invalid_argument);
  c = small_config();
  c.leaf_max = 2;
  EXPECT_THROW(generate_circuit(c), std::invalid_argument);
  c = small_config();
  c.descend_probability = 1.5;
  EXPECT_THROW(generate_circuit(c), std::invalid_argument);
}

TEST(Generator, NetSizesComeFromDistributionRange) {
  GeneratorConfig c = small_config();
  c.pin_distribution = PinDistribution::constant(4);
  const GeneratedCircuit g = generate_circuit(c);
  // Structural nets: 2-pin pairs, leaf spines of up to ceil(leaf_max/2)
  // pins, glue nets of 2-4 pins; sampled nets are exactly 4 pins.
  const HypergraphStats s = compute_stats(g.hypergraph);
  EXPECT_LE(s.max_net_size, std::max(4, (c.leaf_max + 1) / 2));
}

TEST(Generator, RailNetsSpanTheDesign) {
  GeneratorConfig c = small_config();
  c.rail_sizes = {50, 20};
  const GeneratedCircuit g = generate_circuit(c);
  EXPECT_EQ(g.hypergraph.num_nets(), c.num_nets);
  const HypergraphStats s = compute_stats(g.hypergraph);
  EXPECT_EQ(s.max_net_size, 50);
  // Rails are included in the structural count.
  GeneratorConfig without = small_config();
  EXPECT_EQ(structural_net_count(c), structural_net_count(without) + 2);
}

TEST(Generator, RejectsBadRailSizes) {
  GeneratorConfig c = small_config();
  c.rail_sizes = {1};
  EXPECT_THROW(generate_circuit(c), std::invalid_argument);
  c.rail_sizes = {c.num_modules + 1};
  EXPECT_THROW(generate_circuit(c), std::invalid_argument);
}

TEST(Generator, LocalityBiasKeepsMostNetsInsideSubtrees) {
  const GeneratedCircuit g = generate_circuit(small_config());
  // Count nets whose pins all fall inside one child of the root: with a
  // 0.8 descend probability the overwhelming majority must be local.
  const ClusterNode& root = g.tree[0];
  ASSERT_FALSE(root.children.empty());
  std::int32_t local = 0;
  for (NetId n = 0; n < g.hypergraph.num_nets(); ++n) {
    const auto pins = g.hypergraph.pins(n);
    for (const std::int32_t ci : root.children) {
      const ClusterNode& child = g.tree[static_cast<std::size_t>(ci)];
      if (pins.front() >= child.begin && pins.back() < child.end) {
        ++local;
        break;
      }
    }
  }
  EXPECT_GT(local, g.hypergraph.num_nets() * 3 / 4);
}

}  // namespace
}  // namespace netpart
