/// Golden regression tests: pin the exact outputs of the deterministic
/// pipeline on the benchmark suite.  Two tiers:
///  - circuit fingerprints (pin counts, max net size) are pure integer
///    artifacts of the generator and must match on every platform;
///  - algorithm outputs (cuts, ranks, side sizes) are determined by the
///    seeded Lanczos iteration; they are stable for a given platform /
///    compiler and guard against accidental algorithmic regressions.
///    If a legitimate algorithm change shifts them, re-record here and in
///    EXPERIMENTS.md together.

#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "hypergraph/stats.hpp"
#include "igmatch/igmatch.hpp"
#include "igvote/igvote.hpp"

namespace netpart {
namespace {

struct Golden {
  const char* name;
  std::int64_t pins;
  std::int32_t max_net_size;
  std::int32_t igmatch_cut;
  std::int32_t igmatch_rank;
  std::int32_t igmatch_left;
  std::int32_t igvote_cut;
};

// Recorded from the reference build (see file comment).
constexpr Golden kGolden[] = {
    {"bm1", 2494, 90, 1, 4, 876, 1},
    {"19ks", 9652, 240, 132, 2158, 963, 144},
    {"Prim1", 2505, 46, 32, 599, 276, 34},
    {"Prim2", 7871, 34, 1, 3018, 10, 1},
    {"Test02", 4510, 33, 54, 558, 1116, 57},
    {"Test03", 4261, 55, 44, 380, 1244, 45},
    {"Test04", 4456, 50, 76, 820, 758, 80},
    {"Test05", 7727, 120, 1, 2743, 6, 1},
    {"Test06", 4012, 150, 1, 1525, 16, 1},
};

class GoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTest, CircuitFingerprint) {
  const Golden& golden = GetParam();
  const GeneratedCircuit g = make_benchmark(golden.name);
  const HypergraphStats s = compute_stats(g.hypergraph);
  EXPECT_EQ(s.num_pins, golden.pins);
  EXPECT_EQ(s.max_net_size, golden.max_net_size);
}

TEST_P(GoldenTest, IgMatchOutputPinned) {
  const Golden& golden = GetParam();
  const GeneratedCircuit g = make_benchmark(golden.name);
  const IgMatchResult r = igmatch_partition(g.hypergraph);
  EXPECT_EQ(r.nets_cut, golden.igmatch_cut);
  EXPECT_EQ(r.best_rank, golden.igmatch_rank);
  EXPECT_EQ(r.partition.size(Side::kLeft), golden.igmatch_left);
}

TEST_P(GoldenTest, IgVoteOutputPinned) {
  const Golden& golden = GetParam();
  const GeneratedCircuit g = make_benchmark(golden.name);
  const IgVoteResult r = igvote_partition(g.hypergraph);
  EXPECT_EQ(r.nets_cut, golden.igvote_cut);
}

TEST_P(GoldenTest, IgMatchNeverWorseThanIgVote) {
  // Table 3's domination claim, pinned per circuit.
  const Golden& golden = GetParam();
  const GeneratedCircuit g = make_benchmark(golden.name);
  const IgMatchResult igm = igmatch_partition(g.hypergraph);
  const IgVoteResult igv = igvote_partition(g.hypergraph);
  EXPECT_LE(igm.ratio, igv.ratio + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Suite, GoldenTest, ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& param) {
                           return std::string(param.param.name);
                         });

}  // namespace
}  // namespace netpart
