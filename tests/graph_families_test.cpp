/// Spectral property tests over graph families with known Laplacian
/// spectra — a cross-check of the whole CsrMatrix/Lanczos/tridiagonal
/// pipeline against closed-form eigenvalues.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/weighted_graph.hpp"
#include "linalg/fiedler.hpp"

namespace netpart {
namespace {

using linalg::fiedler_pair;
using linalg::FiedlerResult;

WeightedGraph path(std::int32_t n) {
  std::vector<GraphEdge> e;
  for (std::int32_t i = 0; i + 1 < n; ++i) e.push_back({i, i + 1, 1.0});
  return WeightedGraph::from_edges(n, std::move(e));
}

WeightedGraph cycle(std::int32_t n) {
  std::vector<GraphEdge> e;
  for (std::int32_t i = 0; i < n; ++i) e.push_back({i, (i + 1) % n, 1.0});
  return WeightedGraph::from_edges(n, std::move(e));
}

WeightedGraph star(std::int32_t n) {
  std::vector<GraphEdge> e;
  for (std::int32_t i = 1; i < n; ++i) e.push_back({0, i, 1.0});
  return WeightedGraph::from_edges(n, std::move(e));
}

WeightedGraph complete(std::int32_t n) {
  std::vector<GraphEdge> e;
  for (std::int32_t i = 0; i < n; ++i)
    for (std::int32_t j = i + 1; j < n; ++j) e.push_back({i, j, 1.0});
  return WeightedGraph::from_edges(n, std::move(e));
}

WeightedGraph complete_bipartite(std::int32_t a, std::int32_t b) {
  std::vector<GraphEdge> e;
  for (std::int32_t i = 0; i < a; ++i)
    for (std::int32_t j = 0; j < b; ++j) e.push_back({i, a + j, 1.0});
  return WeightedGraph::from_edges(a + b, std::move(e));
}

WeightedGraph grid(std::int32_t rows, std::int32_t cols) {
  std::vector<GraphEdge> e;
  const auto id = [cols](std::int32_t r, std::int32_t c) {
    return r * cols + c;
  };
  for (std::int32_t r = 0; r < rows; ++r)
    for (std::int32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) e.push_back({id(r, c), id(r, c + 1), 1.0});
      if (r + 1 < rows) e.push_back({id(r, c), id(r + 1, c), 1.0});
    }
  return WeightedGraph::from_edges(rows * cols, std::move(e));
}

class FamilySizeTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(FamilySizeTest, PathLambda2) {
  const std::int32_t n = GetParam();
  const FiedlerResult r = fiedler_pair(path(n).laplacian());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.lambda2, 2.0 - 2.0 * std::cos(M_PI / n), 1e-7);
}

TEST_P(FamilySizeTest, CycleLambda2) {
  const std::int32_t n = GetParam();
  const FiedlerResult r = fiedler_pair(cycle(n).laplacian());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.lambda2, 2.0 - 2.0 * std::cos(2.0 * M_PI / n), 1e-7);
}

TEST_P(FamilySizeTest, StarLambda2IsOne) {
  // Star K_{1,n-1} Laplacian spectrum: {0, 1 (n-2 times), n}.
  const std::int32_t n = GetParam();
  const FiedlerResult r = fiedler_pair(star(n).laplacian());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.lambda2, 1.0, 1e-7);
}

TEST_P(FamilySizeTest, CompleteLambda2IsN) {
  const std::int32_t n = GetParam();
  const FiedlerResult r = fiedler_pair(complete(n).laplacian());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.lambda2, static_cast<double>(n), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FamilySizeTest,
                         ::testing::Values(4, 7, 12, 25, 48));

TEST(GraphFamilies, CompleteBipartiteLambda2) {
  // K_{a,b} Laplacian spectrum: {0, a (b-1 times), b (a-1 times), a+b};
  // lambda2 = min(a, b).
  for (const auto& [a, b] : {std::pair{3, 5}, std::pair{4, 4},
                             std::pair{2, 9}}) {
    const FiedlerResult r =
        fiedler_pair(complete_bipartite(a, b).laplacian());
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.lambda2, static_cast<double>(std::min(a, b)), 1e-7)
        << a << "x" << b;
  }
}

TEST(GraphFamilies, GridLambda2IsProductFormula) {
  // Cartesian product: lambda2(P_r x P_c) = min of the two path lambda2's.
  const std::int32_t rows = 4;
  const std::int32_t cols = 7;
  const FiedlerResult r = fiedler_pair(grid(rows, cols).laplacian());
  ASSERT_TRUE(r.converged);
  const double expected =
      std::min(2.0 - 2.0 * std::cos(M_PI / rows),
               2.0 - 2.0 * std::cos(M_PI / cols));
  EXPECT_NEAR(r.lambda2, expected, 1e-7);
}

TEST(GraphFamilies, GridFiedlerCutsTheLongAxis) {
  // The Fiedler vector of an elongated grid varies along the long axis, so
  // its sign splits the grid into left/right halves.
  const std::int32_t rows = 3;
  const std::int32_t cols = 11;
  const FiedlerResult r = fiedler_pair(grid(rows, cols).laplacian());
  ASSERT_TRUE(r.converged);
  // Columns 0 and cols-1 must carry opposite signs in every row.
  for (std::int32_t row = 0; row < rows; ++row) {
    const double first = r.vector[static_cast<std::size_t>(row * cols)];
    const double last =
        r.vector[static_cast<std::size_t>(row * cols + cols - 1)];
    EXPECT_LT(first * last, 0.0) << "row " << row;
  }
}

TEST(GraphFamilies, WeightScalingScalesSpectrum) {
  // L(cG) = c L(G): doubling all weights doubles lambda2.
  std::vector<GraphEdge> e;
  for (std::int32_t i = 0; i + 1 < 10; ++i) e.push_back({i, i + 1, 2.0});
  const WeightedGraph doubled = WeightedGraph::from_edges(10, std::move(e));
  const FiedlerResult scaled = fiedler_pair(doubled.laplacian());
  const FiedlerResult unit = fiedler_pair(path(10).laplacian());
  ASSERT_TRUE(scaled.converged);
  ASSERT_TRUE(unit.converged);
  EXPECT_NEAR(scaled.lambda2, 2.0 * unit.lambda2, 1e-7);
}

}  // namespace
}  // namespace netpart
