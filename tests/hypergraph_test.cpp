#include "hypergraph/hypergraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace netpart {
namespace {

Hypergraph triangle() {
  // Three modules, three 2-pin nets forming a triangle.
  HypergraphBuilder b(3);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({0, 2});
  return b.build();
}

TEST(Hypergraph, EmptyByDefault) {
  const Hypergraph h;
  EXPECT_EQ(h.num_modules(), 0);
  EXPECT_EQ(h.num_nets(), 0);
  EXPECT_EQ(h.num_pins(), 0);
  EXPECT_TRUE(h.is_connected());
}

TEST(Hypergraph, BasicCounts) {
  const Hypergraph h = triangle();
  EXPECT_EQ(h.num_modules(), 3);
  EXPECT_EQ(h.num_nets(), 3);
  EXPECT_EQ(h.num_pins(), 6);
  EXPECT_EQ(h.max_net_size(), 2);
  EXPECT_EQ(h.max_module_degree(), 2);
}

TEST(Hypergraph, PinsAreSorted) {
  HypergraphBuilder b(5);
  b.add_net({4, 2, 0});
  const Hypergraph h = b.build();
  const auto pins = h.pins(0);
  ASSERT_EQ(pins.size(), 3u);
  EXPECT_EQ(pins[0], 0);
  EXPECT_EQ(pins[1], 2);
  EXPECT_EQ(pins[2], 4);
}

TEST(Hypergraph, DuplicatePinsMerged) {
  HypergraphBuilder b(3);
  b.add_net({1, 1, 2, 1});
  const Hypergraph h = b.build();
  EXPECT_EQ(h.net_size(0), 2);
  EXPECT_TRUE(h.contains(0, 1));
  EXPECT_TRUE(h.contains(0, 2));
  EXPECT_FALSE(h.contains(0, 0));
}

TEST(Hypergraph, IncidenceTransposeConsistent) {
  const Hypergraph h = triangle();
  for (ModuleId m = 0; m < h.num_modules(); ++m)
    for (const NetId n : h.nets_of(m)) EXPECT_TRUE(h.contains(n, m));
  std::int64_t total = 0;
  for (ModuleId m = 0; m < h.num_modules(); ++m)
    total += h.module_degree(m);
  EXPECT_EQ(total, h.num_pins());
}

TEST(Hypergraph, ModuleNetsSorted) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  b.add_net({0, 1});
  b.add_net({0});
  const Hypergraph h = b.build();
  const auto nets = h.nets_of(0);
  ASSERT_EQ(nets.size(), 3u);
  EXPECT_EQ(nets[0], 0);
  EXPECT_EQ(nets[1], 1);
  EXPECT_EQ(nets[2], 2);
}

TEST(Hypergraph, SinglePinNetAllowed) {
  HypergraphBuilder b(2);
  b.add_net({1});
  const Hypergraph h = b.build();
  EXPECT_EQ(h.net_size(0), 1);
  EXPECT_EQ(h.module_degree(0), 0);
  EXPECT_EQ(h.module_degree(1), 1);
}

TEST(HypergraphBuilder, RejectsBadPin) {
  HypergraphBuilder b(2);
  EXPECT_THROW(b.add_net({0, 2}), std::out_of_range);
  EXPECT_THROW(b.add_net({-1}), std::out_of_range);
}

TEST(HypergraphBuilder, RejectsNegativeModuleCount) {
  EXPECT_THROW(HypergraphBuilder(-1), std::invalid_argument);
}

TEST(HypergraphBuilder, NamePropagates) {
  HypergraphBuilder b(1);
  b.set_name("testchip");
  const Hypergraph h = b.build();
  EXPECT_EQ(h.name(), "testchip");
}

TEST(HypergraphBuilder, ReusableAfterBuild) {
  HypergraphBuilder b(3);
  b.add_net({0, 1});
  const Hypergraph first = b.build();
  EXPECT_EQ(first.num_nets(), 1);
  b.add_net({1, 2});
  b.add_net({0, 2});
  const Hypergraph second = b.build();
  EXPECT_EQ(second.num_nets(), 2);
  EXPECT_TRUE(second.contains(0, 2));
}

TEST(Hypergraph, ConnectivityDetection) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({2, 3});
  const Hypergraph split = b.build();
  EXPECT_FALSE(split.is_connected());

  HypergraphBuilder b2(4);
  b2.add_net({0, 1});
  b2.add_net({2, 3});
  b2.add_net({1, 2});
  EXPECT_TRUE(b2.build().is_connected());
}

TEST(Hypergraph, IsolatedModuleBreaksConnectivity) {
  HypergraphBuilder b(3);
  b.add_net({0, 1});
  EXPECT_FALSE(b.build().is_connected());
}

TEST(InduceSubhypergraph, RenumbersAndFiltersNets) {
  HypergraphBuilder b(6);
  b.add_net({0, 1, 2});  // two pins survive -> {0, 1}
  b.add_net({3, 4});     // no pins survive -> dropped
  b.add_net({0, 5});     // one pin survives -> dropped
  b.add_net({1, 2});     // both survive -> {1, 2}... renumbered
  const Hypergraph h = b.build();
  const std::vector<ModuleId> keep{0, 1, 2};
  const Hypergraph sub = induce_subhypergraph(h, keep);
  EXPECT_EQ(sub.num_modules(), 3);
  EXPECT_EQ(sub.num_nets(), 2);
  EXPECT_TRUE(sub.contains(0, 0));
  EXPECT_TRUE(sub.contains(0, 1));
  EXPECT_TRUE(sub.contains(0, 2));
  EXPECT_TRUE(sub.contains(1, 1));
  EXPECT_TRUE(sub.contains(1, 2));
}

TEST(InduceSubhypergraph, ReorderedModulesRemap) {
  HypergraphBuilder b(4);
  b.add_net({1, 3});
  const Hypergraph h = b.build();
  const std::vector<ModuleId> keep{3, 1};  // 3 -> 0, 1 -> 1
  const Hypergraph sub = induce_subhypergraph(h, keep);
  EXPECT_EQ(sub.num_nets(), 1);
  EXPECT_TRUE(sub.contains(0, 0));
  EXPECT_TRUE(sub.contains(0, 1));
}

TEST(InduceSubhypergraph, MinNetSizeOneKeepsSingletons) {
  HypergraphBuilder b(3);
  b.add_net({0, 2});
  const Hypergraph h = b.build();
  const std::vector<ModuleId> keep{0};
  EXPECT_EQ(induce_subhypergraph(h, keep, 1).num_nets(), 1);
  EXPECT_EQ(induce_subhypergraph(h, keep, 2).num_nets(), 0);
}

TEST(InduceSubhypergraph, RejectsBadInput) {
  HypergraphBuilder b(3);
  b.add_net({0, 1});
  const Hypergraph h = b.build();
  const std::vector<ModuleId> bad{0, 7};
  EXPECT_THROW(induce_subhypergraph(h, bad), std::out_of_range);
  const std::vector<ModuleId> dup{1, 1};
  EXPECT_THROW(induce_subhypergraph(h, dup), std::invalid_argument);
}

}  // namespace
}  // namespace netpart
