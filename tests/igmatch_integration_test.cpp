/// Integration tests pinning the incremental IG-Match sweep against an
/// independent from-scratch implementation of every split: fresh matcher
/// per split, fresh classification, fresh evaluation.  Any drift in the
/// incremental matching repair, the Even/Odd BFS, or the Phase II
/// evaluation shows up here.

#include <gtest/gtest.h>

#include <limits>

#include "circuits/generator.hpp"
#include "graph/intersection_graph.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "igmatch/dynamic_matcher.hpp"
#include "igmatch/igmatch.hpp"
#include "spectral/eig1.hpp"

namespace netpart {
namespace {

/// From-scratch evaluation of one split: a fresh matcher replays the
/// moves, then Phase I/II run exactly as in the production code path.
struct ScratchSplit {
  std::int32_t matching_size = 0;
  double best_ratio = std::numeric_limits<double>::infinity();
  std::int32_t best_cut = 0;
};

ScratchSplit evaluate_from_scratch(const Hypergraph& h,
                                   const WeightedGraph& ig,
                                   std::span<const std::int32_t> order,
                                   std::int32_t rank) {
  DynamicBipartiteMatcher matcher(ig);
  for (std::int32_t i = 0; i < rank; ++i)
    matcher.move_to_right(order[static_cast<std::size_t>(i)]);
  const std::vector<NetLabel> labels = matcher.classify();

  // Fates.
  enum class Fate { kNone, kLeft, kRight };
  std::vector<Fate> fate(static_cast<std::size_t>(h.num_modules()),
                         Fate::kNone);
  for (NetId n = 0; n < h.num_nets(); ++n) {
    if (labels[static_cast<std::size_t>(n)] == NetLabel::kWinnerLeft)
      for (const ModuleId m : h.pins(n))
        fate[static_cast<std::size_t>(m)] = Fate::kLeft;
    else if (labels[static_cast<std::size_t>(n)] == NetLabel::kWinnerRight)
      for (const ModuleId m : h.pins(n))
        fate[static_cast<std::size_t>(m)] = Fate::kRight;
  }
  // Both wholesale options via explicit partitions + net_cut.
  ScratchSplit out;
  out.matching_size = matcher.matching_size();
  for (const bool none_left : {true, false}) {
    Partition p(h.num_modules());
    for (ModuleId m = 0; m < h.num_modules(); ++m) {
      const Fate f = fate[static_cast<std::size_t>(m)];
      const Side side = f == Fate::kLeft    ? Side::kLeft
                        : f == Fate::kRight ? Side::kRight
                        : (none_left ? Side::kLeft : Side::kRight);
      p.assign(m, side);
    }
    const std::int32_t cut = net_cut(h, p);
    const double ratio = ratio_cut(h, p);
    if (ratio < out.best_ratio) {
      out.best_ratio = ratio;
      out.best_cut = cut;
    }
  }
  return out;
}

class IgMatchScratchTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IgMatchScratchTest, IncrementalSweepMatchesFromScratch) {
  GeneratorConfig c;
  c.name = "igm-scratch-" + std::to_string(GetParam());
  c.num_modules = 80;
  c.num_nets = 95;
  c.leaf_max = 10;
  const Hypergraph h = generate_circuit(c).hypergraph;
  const WeightedGraph ig = intersection_graph(h);
  const NetOrdering ordering = spectral_net_ordering(h);

  IgMatchOptions options;
  options.record_splits = true;
  const IgMatchResult incremental =
      igmatch_with_ordering(h, ordering.order, options);
  ASSERT_EQ(static_cast<std::int32_t>(incremental.splits.size()),
            h.num_nets() - 1);

  for (const IgMatchSplitRecord& record : incremental.splits) {
    const ScratchSplit scratch =
        evaluate_from_scratch(h, ig, ordering.order, record.rank);
    ASSERT_EQ(record.matching_size, scratch.matching_size)
        << "rank " << record.rank;
    // Ratios computed from counts vs from explicit partitions must agree
    // exactly (both are exact integer/integer arithmetic in double).
    ASSERT_DOUBLE_EQ(record.ratio, scratch.best_ratio)
        << "rank " << record.rank;
    ASSERT_EQ(record.nets_cut, scratch.best_cut) << "rank " << record.rank;
  }

  // The overall best equals the minimum across records.
  double best = std::numeric_limits<double>::infinity();
  for (const IgMatchSplitRecord& r : incremental.splits)
    best = std::min(best, r.ratio);
  EXPECT_DOUBLE_EQ(incremental.ratio, best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IgMatchScratchTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace netpart
