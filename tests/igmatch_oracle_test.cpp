/// Oracle-backed IG-Match tests on tiny random circuits.
///
/// For circuits with at most 12 modules the optimal ratio cut is computable
/// by brute force: enumerate all 2^(n-1) - 1 proper bipartitions (module 0
/// pinned to Left kills the mirror symmetry).  Against that exact oracle we
/// check two things at every random instance:
///
///  * IG-Match is a heuristic — it must never report a ratio BETTER than
///    the optimum (that would mean a metric bug), and
///  * the Theorem 4/5 guarantee holds at every one of the m-1 splits of the
///    sweep: the nets cut by the chosen completion never exceed the size of
///    the maximum matching of the split's bipartite conflict graph.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "circuits/rng.hpp"
#include "graph/intersection_graph.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "hypergraph/hypergraph.hpp"
#include "igmatch/igmatch.hpp"

namespace netpart {
namespace {

/// Random connected-ish circuit: n in [4, 12] modules, nets of size
/// 2..min(5, n).  Every module appears in at least one net (a chain seed
/// guarantees it) so no row of the oracle is trivially uncuttable.
Hypergraph tiny_circuit(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const auto n = static_cast<std::int32_t>(rng.range(4, 12));
  HypergraphBuilder builder(n);
  // Chain seed: modules i, i+1 share a net, so the circuit is connected.
  for (std::int32_t i = 0; i + 1 < n; i += 2)
    builder.add_net({i, i + 1});
  const auto extra = static_cast<std::int32_t>(rng.range(3, 10));
  for (std::int32_t e = 0; e < extra; ++e) {
    const auto size = static_cast<std::int32_t>(
        rng.range(2, std::min<std::int64_t>(5, n)));
    std::vector<ModuleId> pins;
    for (std::int32_t i = 0; i < size; ++i)
      pins.push_back(
          static_cast<ModuleId>(rng.below(static_cast<std::uint64_t>(n))));
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() >= 2) builder.add_net(pins);
  }
  return builder.build();
}

/// Exact minimum ratio cut by exhaustive enumeration.  Module 0 is pinned
/// to Left; masks run over modules 1..n-1, skipping the improper all-left /
/// all-right assignments.
double oracle_min_ratio(const Hypergraph& h) {
  const std::int32_t n = h.num_modules();
  double best = std::numeric_limits<double>::infinity();
  const std::uint32_t limit = 1u << (n - 1);
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    Partition p(n, Side::kLeft);
    for (std::int32_t m = 1; m < n; ++m)
      if ((mask >> (m - 1)) & 1u) p.assign(m, Side::kRight);
    const double r =
        ratio_cut_value(net_cut(h, p), p.size(Side::kLeft),
                        p.size(Side::kRight));
    if (r < best) best = r;
  }
  return best;
}

TEST(IgMatchOracleTest, NeverBeatsExhaustiveOracleAndBoundHoldsPerSplit) {
  constexpr std::uint64_t kInstances = 60;
  std::int32_t optimal_hits = 0;
  std::int32_t proper_results = 0;
  for (std::uint64_t seed = 0; seed < kInstances; ++seed) {
    const Hypergraph h = tiny_circuit(seed);
    const double oracle = oracle_min_ratio(h);
    ASSERT_TRUE(std::isfinite(oracle)) << "seed " << seed;

    IgMatchOptions options;
    options.record_splits = true;
    const IgMatchResult r = igmatch_partition(h, options);

    if (r.partition.is_proper()) {
      ++proper_results;
      // Reported metrics must be self-consistent...
      EXPECT_EQ(r.nets_cut, net_cut(h, r.partition)) << "seed " << seed;
      EXPECT_EQ(r.ratio,
                ratio_cut_value(r.nets_cut, r.partition.size(Side::kLeft),
                                r.partition.size(Side::kRight)))
          << "seed " << seed;
      if (r.ratio <= oracle + 1e-12) ++optimal_hits;
    } else {
      // Tiny dense instances can leave every split without a proper
      // wholesale completion; the contract is then an explicit +inf, not
      // a bogus "perfect" ratio.
      EXPECT_TRUE(std::isinf(r.ratio)) << "seed " << seed;
    }
    // Either way, the result can never be better than the exhaustive
    // optimum...
    EXPECT_GE(r.ratio, oracle - 1e-12) << "seed " << seed;

    // ...and Theorem 4/5 holds: at EVERY split, cut <= |maximum matching|.
    ASSERT_EQ(r.splits.size(),
              static_cast<std::size_t>(h.num_nets() - 1))
        << "seed " << seed;
    for (const IgMatchSplitRecord& rec : r.splits)
      EXPECT_LE(rec.nets_cut, rec.matching_size)
          << "seed " << seed << " rank " << rec.rank;
  }
  // The degenerate no-proper-completion corner must stay a corner, and the
  // spectral ordering should find the true optimum on a decent share of
  // these tiny instances; if it never does, the sweep is broken even though
  // every inequality above passes.
  EXPECT_GE(proper_results, static_cast<std::int32_t>(kInstances * 3 / 4));
  EXPECT_GE(optimal_hits, static_cast<std::int32_t>(kInstances / 4));
}

// The Theorem 4/5 bound is a property of the sweep, not of the spectral
// ordering: it must hold for arbitrary (e.g. shuffled) net orderings too.
TEST(IgMatchOracleTest, MatchingBoundHoldsForShuffledOrderings) {
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    const Hypergraph h = tiny_circuit(seed);
    const double oracle = oracle_min_ratio(h);
    std::vector<std::int32_t> order(static_cast<std::size_t>(h.num_nets()));
    std::iota(order.begin(), order.end(), 0);
    Xoshiro256 rng(seed ^ 0xdeadbeefULL);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.below(i))]);

    IgMatchOptions options;
    options.record_splits = true;
    const IgMatchResult r = igmatch_with_ordering(h, order, options);
    EXPECT_GE(r.ratio, oracle - 1e-12) << "seed " << seed;
    if (!r.partition.is_proper())
      EXPECT_TRUE(std::isinf(r.ratio)) << "seed " << seed;
    for (const IgMatchSplitRecord& rec : r.splits)
      EXPECT_LE(rec.nets_cut, rec.matching_size)
          << "seed " << seed << " rank " << rec.rank;
  }
}

// Masked-sweep consistency: an all-ones mask is the full sweep, and any
// restriction of the mask can only lose (never gain) sweep quality while
// still never beating the oracle.
TEST(IgMatchOracleTest, MaskedSweepIsConsistentWithFullSweep) {
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    const Hypergraph h = tiny_circuit(seed);
    if (h.num_nets() < 4) continue;
    const double oracle = oracle_min_ratio(h);
    const WeightedGraph ig = intersection_graph(h);
    std::vector<std::int32_t> order(static_cast<std::size_t>(h.num_nets()));
    std::iota(order.begin(), order.end(), 0);

    const IgMatchResult full = igmatch_sweep(h, ig, order, {}, {});
    std::vector<char> all(order.size(), 1);
    const IgMatchResult full_masked = igmatch_sweep(h, ig, order, all, {});
    EXPECT_EQ(full.ratio, full_masked.ratio) << "seed " << seed;
    EXPECT_EQ(full.nets_cut, full_masked.nets_cut) << "seed " << seed;
    EXPECT_EQ(full.best_rank, full_masked.best_rank) << "seed " << seed;

    // Evaluate only the even ranks: the evaluated splits see the exact
    // matcher state of the full sweep, so the result can only be >=.
    std::vector<char> even(order.size(), 0);
    for (std::size_t rank = 2; rank < order.size(); rank += 2)
      even[rank] = 1;
    const IgMatchResult masked = igmatch_sweep(h, ig, order, even, {});
    EXPECT_GE(masked.ratio, full.ratio) << "seed " << seed;
    EXPECT_GE(masked.ratio, oracle - 1e-12) << "seed " << seed;
    if (full.best_rank % 2 == 0 && full.best_rank >= 2)
      EXPECT_EQ(masked.ratio, full.ratio) << "seed " << seed;
  }
}

}  // namespace
}  // namespace netpart
