#include "igmatch/igmatch.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

/// Two 2-pin-net cliques bridged by one net (modules 0-4 and 5-9).
Hypergraph dumbbell() {
  HypergraphBuilder b(10);
  for (std::int32_t i = 0; i < 5; ++i)
    for (std::int32_t j = i + 1; j < 5; ++j) {
      b.add_net({i, j});
      b.add_net({5 + i, 5 + j});
    }
  b.add_net({4, 5});
  return b.build();
}

TEST(IgMatch, SeparatesDumbbell) {
  const Hypergraph h = dumbbell();
  const IgMatchResult r = igmatch_partition(h);
  EXPECT_TRUE(r.eigen_converged);
  EXPECT_EQ(r.nets_cut, 1);
  EXPECT_EQ(r.partition.size(Side::kLeft), 5);
  const Side s = r.partition.side(0);
  for (std::int32_t i = 1; i < 5; ++i) EXPECT_EQ(r.partition.side(i), s);
  for (std::int32_t i = 5; i < 10; ++i)
    EXPECT_EQ(r.partition.side(i), opposite(s));
}

TEST(IgMatch, ResultInternallyConsistent) {
  GeneratorConfig c;
  c.name = "igmatch-consistency";
  c.num_modules = 150;
  c.num_nets = 170;
  c.leaf_max = 12;
  const Hypergraph h = generate_circuit(c).hypergraph;
  const IgMatchResult r = igmatch_partition(h);
  EXPECT_TRUE(r.eigen_converged);
  EXPECT_TRUE(r.partition.is_proper());
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
  EXPECT_DOUBLE_EQ(r.ratio, ratio_cut(h, r.partition));
  EXPECT_GE(r.best_rank, 1);
  EXPECT_LT(r.best_rank, h.num_nets());
}

TEST(IgMatch, Theorem5BoundHoldsAtEverySplit) {
  GeneratorConfig c;
  c.name = "igmatch-bound";
  c.num_modules = 100;
  c.num_nets = 120;
  c.leaf_max = 10;
  const Hypergraph h = generate_circuit(c).hypergraph;
  IgMatchOptions options;
  options.record_splits = true;
  const IgMatchResult r = igmatch_partition(h, options);
  ASSERT_EQ(static_cast<std::int32_t>(r.splits.size()), h.num_nets() - 1);
  for (const IgMatchSplitRecord& record : r.splits)
    EXPECT_LE(record.nets_cut, record.matching_size)
        << "rank " << record.rank;
  EXPECT_LE(r.nets_cut, r.matching_bound_at_best);
}

TEST(IgMatch, CutCanBeStrictlyBelowMatchingBound) {
  // The Figure 4 phenomenon: a "loser" net whose modules all end up on one
  // side is not actually cut.  Nets: x={0,1}, v={1,2}, y={2,3}, z={3,4},
  // u={1,5}.  With the split L={x,y,u} | R={v,z}, the maximum matching has
  // size 2 (x-v, y-z) but the completed partition {0,1,5} | {2,3,4} cuts
  // only net v.
  HypergraphBuilder b(6);
  b.add_net({0, 1});  // x = net 0
  b.add_net({1, 2});  // v = net 1
  b.add_net({2, 3});  // y = net 2
  b.add_net({3, 4});  // z = net 3
  b.add_net({1, 5});  // u = net 4
  const Hypergraph h = b.build();

  const std::vector<std::int32_t> order{1, 3, 0, 2, 4};  // v, z first
  IgMatchOptions options;
  options.record_splits = true;
  const IgMatchResult r = igmatch_with_ordering(h, order, options);
  ASSERT_GE(r.splits.size(), 2u);
  const IgMatchSplitRecord& at2 = r.splits[1];  // rank 2: R = {v, z}
  EXPECT_EQ(at2.matching_size, 2);
  EXPECT_EQ(at2.nets_cut, 1);
  EXPECT_LT(at2.nets_cut, at2.matching_size);
}

TEST(IgMatch, WithOrderingValidatesSize) {
  const Hypergraph h = dumbbell();
  std::vector<std::int32_t> short_order{0, 1, 2};
  EXPECT_THROW(igmatch_with_ordering(h, short_order), std::invalid_argument);
}

TEST(IgMatch, TrivialInstancesReturnSafely) {
  HypergraphBuilder b(1);
  b.add_net({0});
  const IgMatchResult r = igmatch_partition(b.build());
  EXPECT_EQ(r.nets_cut, 0);

  HypergraphBuilder b2(3);
  b2.add_net({0, 1, 2});
  const IgMatchResult r2 = igmatch_partition(b2.build());
  EXPECT_EQ(r2.nets_cut, 0);  // a single net cannot be usefully split
}

TEST(IgMatch, OrderingDirectionIsIrrelevantForBestRatio) {
  // Sweeping the sorted eigenvector forward or backward explores the same
  // family of net splits, so the best ratio must agree.
  const Hypergraph h = dumbbell();
  std::vector<std::int32_t> order(static_cast<std::size_t>(h.num_nets()));
  std::iota(order.begin(), order.end(), 0);
  const IgMatchResult fwd = igmatch_with_ordering(h, order);
  std::vector<std::int32_t> rev(order.rbegin(), order.rend());
  const IgMatchResult bwd = igmatch_with_ordering(h, rev);
  EXPECT_DOUBLE_EQ(fwd.ratio, bwd.ratio);
}

TEST(IgMatch, RecursiveNeverWorse) {
  GeneratorConfig c;
  c.name = "igmatch-recursive";
  c.num_modules = 180;
  c.num_nets = 200;
  c.leaf_max = 14;
  const Hypergraph h = generate_circuit(c).hypergraph;
  const IgMatchResult plain = igmatch_partition(h);
  IgMatchOptions options;
  options.recursive = true;
  const IgMatchResult recursive = igmatch_partition(h, options);
  EXPECT_LE(recursive.ratio, plain.ratio + 1e-12);
  EXPECT_EQ(recursive.nets_cut, net_cut(h, recursive.partition));
}

TEST(IgMatch, WeightingVariantsAllProduceValidPartitions) {
  GeneratorConfig c;
  c.name = "igmatch-weightings";
  c.num_modules = 120;
  c.num_nets = 140;
  c.leaf_max = 12;
  const Hypergraph h = generate_circuit(c).hypergraph;
  for (const IgWeighting w :
       {IgWeighting::kPaper, IgWeighting::kUniform, IgWeighting::kOverlap,
        IgWeighting::kJaccard}) {
    IgMatchOptions options;
    options.weighting = w;
    const IgMatchResult r = igmatch_partition(h, options);
    EXPECT_TRUE(r.partition.is_proper()) << to_string(w);
    EXPECT_EQ(r.nets_cut, net_cut(h, r.partition)) << to_string(w);
  }
}

}  // namespace
}  // namespace netpart
