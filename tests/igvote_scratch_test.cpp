/// Pins the IG-Vote sweep against an independent replay of the Appendix B
/// pseudocode: recompute the weight vectors and the module moves by hand
/// for every prefix and compare the best ratio cut found.

#include <gtest/gtest.h>

#include <limits>

#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "igvote/igvote.hpp"
#include "spectral/eig1.hpp"

namespace netpart {
namespace {

/// Literal Appendix B replay for one sweep direction, evaluating the ratio
/// cut from scratch after every net (no incremental tracker).
double replay_sweep(const Hypergraph& h,
                    std::span<const std::int32_t> order, Side start_side,
                    double threshold) {
  const std::int32_t n = h.num_modules();
  std::vector<double> total(static_cast<std::size_t>(n), 0.0);
  for (NetId net = 0; net < h.num_nets(); ++net)
    for (const ModuleId m : h.pins(net))
      total[static_cast<std::size_t>(m)] +=
          1.0 / static_cast<double>(h.net_size(net));

  Partition p(n, start_side);
  std::vector<double> moved(static_cast<std::size_t>(n), 0.0);
  double best = std::numeric_limits<double>::infinity();
  for (const std::int32_t net : order) {
    for (const ModuleId m : h.pins(net)) {
      moved[static_cast<std::size_t>(m)] +=
          1.0 / static_cast<double>(h.net_size(net));
      if (moved[static_cast<std::size_t>(m)] >=
              threshold * total[static_cast<std::size_t>(m)] &&
          p.side(m) == start_side)
        p.assign(m, opposite(start_side));
    }
    best = std::min(best, ratio_cut(h, p));
  }
  return best;
}

class IgVoteScratchTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IgVoteScratchTest, SweepMatchesAppendixBReplay) {
  GeneratorConfig c;
  c.name = "igvote-scratch-" + std::to_string(GetParam());
  c.num_modules = 90;
  c.num_nets = 105;
  c.leaf_max = 10;
  const Hypergraph h = generate_circuit(c).hypergraph;
  const NetOrdering ordering = spectral_net_ordering(h);

  const IgVoteResult production = igvote_with_ordering(h, ordering.order);

  const double forward =
      replay_sweep(h, ordering.order, Side::kLeft, 0.5);
  std::vector<std::int32_t> reversed(ordering.order.rbegin(),
                                     ordering.order.rend());
  const double backward = replay_sweep(h, reversed, Side::kRight, 0.5);
  EXPECT_DOUBLE_EQ(production.ratio, std::min(forward, backward));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IgVoteScratchTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace netpart
