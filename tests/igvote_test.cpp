#include "igvote/igvote.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

Hypergraph dumbbell() {
  HypergraphBuilder b(10);
  for (std::int32_t i = 0; i < 5; ++i)
    for (std::int32_t j = i + 1; j < 5; ++j) {
      b.add_net({i, j});
      b.add_net({5 + i, 5 + j});
    }
  b.add_net({4, 5});
  return b.build();
}

TEST(IgVote, SeparatesDumbbell) {
  const IgVoteResult r = igvote_partition(dumbbell());
  EXPECT_TRUE(r.eigen_converged);
  EXPECT_EQ(r.nets_cut, 1);
  EXPECT_EQ(r.partition.size(Side::kLeft), 5);
}

TEST(IgVote, ResultInternallyConsistent) {
  GeneratorConfig c;
  c.name = "igvote-consistency";
  c.num_modules = 140;
  c.num_nets = 160;
  c.leaf_max = 12;
  const Hypergraph h = generate_circuit(c).hypergraph;
  const IgVoteResult r = igvote_partition(h);
  EXPECT_TRUE(r.partition.is_proper());
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
  EXPECT_DOUBLE_EQ(r.ratio, ratio_cut(h, r.partition));
}

TEST(IgVote, VoteMechanicsOnTinyExample) {
  // Modules 0,1; nets a={0,1}, b={0}, c={1}.  Module 0's total weight is
  // 1/2 + 1 = 3/2; module 1's likewise.  Processing order (a, b, c):
  // after net a both modules have moved weight 1/2 < 3/4, nobody moves;
  // after net b module 0 reaches 3/2 >= 3/4 and defects; the partition
  // {1} | {0} then cuts only net a: ratio 1.
  HypergraphBuilder builder(2);
  builder.add_net({0, 1});
  builder.add_net({0});
  builder.add_net({1});
  const Hypergraph h = builder.build();
  const std::vector<std::int32_t> order{0, 1, 2};
  const IgVoteResult r = igvote_with_ordering(h, order);
  EXPECT_EQ(r.nets_cut, 1);
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
}

TEST(IgVote, ThresholdOneDelaysMoves) {
  // With threshold 1.0 a module defects only when ALL of its net weight
  // has moved; the sweep still finds some proper partition.
  GeneratorConfig c;
  c.name = "igvote-threshold";
  c.num_modules = 80;
  c.num_nets = 100;
  c.leaf_max = 10;
  const Hypergraph h = generate_circuit(c).hypergraph;
  IgVoteOptions options;
  options.threshold = 1.0;
  const IgVoteResult r = igvote_partition(h, options);
  EXPECT_TRUE(r.partition.is_proper());
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
}

TEST(IgVote, RejectsBadThreshold) {
  const Hypergraph h = dumbbell();
  std::vector<std::int32_t> order(static_cast<std::size_t>(h.num_nets()));
  std::iota(order.begin(), order.end(), 0);
  IgVoteOptions options;
  options.threshold = 0.0;
  EXPECT_THROW(igvote_with_ordering(h, order, options),
               std::invalid_argument);
  options.threshold = 1.5;
  EXPECT_THROW(igvote_with_ordering(h, order, options),
               std::invalid_argument);
}

TEST(IgVote, RejectsWrongOrderSize) {
  const Hypergraph h = dumbbell();
  const std::vector<std::int32_t> order{0, 1};
  EXPECT_THROW(igvote_with_ordering(h, order), std::invalid_argument);
}

TEST(IgVote, BothSweepDirectionsConsidered) {
  // On a symmetric instance the two directions tie; on generated circuits
  // the reported winner must match the better of the two directions, which
  // we can only observe through consistency of the final ratio.  Check the
  // flag is at least set deterministically.
  const Hypergraph h = dumbbell();
  const IgVoteResult a = igvote_partition(h);
  const IgVoteResult b = igvote_partition(h);
  EXPECT_EQ(a.forward_sweep_won, b.forward_sweep_won);
  EXPECT_EQ(a.partition, b.partition);
}

TEST(IgVote, TrivialInstances) {
  HypergraphBuilder b(1);
  b.add_net({0});
  const IgVoteResult r = igvote_partition(b.build());
  EXPECT_EQ(r.nets_cut, 0);
}

}  // namespace
}  // namespace netpart
