#include "graph/intersection_graph.hpp"

#include <gtest/gtest.h>

namespace netpart {
namespace {

/// Worked example in the style of Figure 1: five modules, four nets.
///   s0 = {0, 1}, s1 = {1, 2, 3}, s2 = {3, 4}, s3 = {0, 3}
/// Module degrees: d(0)=2, d(1)=2, d(2)=1, d(3)=3, d(4)=1.
Hypergraph figure_style_example() {
  HypergraphBuilder b(5);
  b.add_net({0, 1});
  b.add_net({1, 2, 3});
  b.add_net({3, 4});
  b.add_net({0, 3});
  return b.build();
}

TEST(IntersectionGraph, AdjacencyPattern) {
  const WeightedGraph ig = intersection_graph(figure_style_example());
  EXPECT_EQ(ig.num_vertices(), 4);  // one vertex per net
  // s0-s2 share no module; every other pair shares one.
  EXPECT_DOUBLE_EQ(ig.edge_weight(0, 2), 0.0);
  EXPECT_GT(ig.edge_weight(0, 1), 0.0);
  EXPECT_GT(ig.edge_weight(0, 3), 0.0);
  EXPECT_GT(ig.edge_weight(1, 2), 0.0);
  EXPECT_GT(ig.edge_weight(1, 3), 0.0);
  EXPECT_GT(ig.edge_weight(2, 3), 0.0);
  EXPECT_EQ(ig.num_edges(), 5);
}

TEST(IntersectionGraph, PaperWeightsHandComputed) {
  // A'_ab = sum over shared modules v_k of (1/(d_k-1)) (1/|s_a| + 1/|s_b|).
  const WeightedGraph ig = intersection_graph(figure_style_example());
  // s0 ^ s1 = {1}, d(1)=2: 1/1 * (1/2 + 1/3) = 5/6.
  EXPECT_NEAR(ig.edge_weight(0, 1), 5.0 / 6.0, 1e-14);
  // s0 ^ s3 = {0}, d(0)=2: 1/1 * (1/2 + 1/2) = 1.
  EXPECT_NEAR(ig.edge_weight(0, 3), 1.0, 1e-14);
  // s1 ^ s2 = {3}, d(3)=3: 1/2 * (1/3 + 1/2) = 5/12.
  EXPECT_NEAR(ig.edge_weight(1, 2), 5.0 / 12.0, 1e-14);
  // s1 ^ s3 = {3}: same as above.
  EXPECT_NEAR(ig.edge_weight(1, 3), 5.0 / 12.0, 1e-14);
  // s2 ^ s3 = {3}: 1/2 * (1/2 + 1/2) = 1/2.
  EXPECT_NEAR(ig.edge_weight(2, 3), 0.5, 1e-14);
}

TEST(IntersectionGraph, MultipleSharedModulesAccumulate) {
  // Nets {0,1,2} and {0,1,3}: modules 0 and 1 both have degree 2, so
  // A' = 2 * (1/1) * (1/3 + 1/3) = 4/3.
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2});
  b.add_net({0, 1, 3});
  const Hypergraph h = b.build();
  EXPECT_NEAR(intersection_graph(h).edge_weight(0, 1), 4.0 / 3.0, 1e-14);
  EXPECT_DOUBLE_EQ(
      intersection_graph(h, IgWeighting::kOverlap).edge_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(
      intersection_graph(h, IgWeighting::kUniform).edge_weight(0, 1), 1.0);
  // Jaccard: 2 / (3 + 3 - 2) = 1/2.
  EXPECT_NEAR(
      intersection_graph(h, IgWeighting::kJaccard).edge_weight(0, 1), 0.5,
      1e-14);
}

TEST(IntersectionGraph, PatternIdenticalAcrossWeightings) {
  const Hypergraph h = figure_style_example();
  const WeightedGraph paper = intersection_graph(h, IgWeighting::kPaper);
  for (const IgWeighting w : {IgWeighting::kUniform, IgWeighting::kOverlap,
                              IgWeighting::kJaccard}) {
    const WeightedGraph other = intersection_graph(h, w);
    ASSERT_EQ(other.num_edges(), paper.num_edges()) << to_string(w);
    for (std::int32_t v = 0; v < paper.num_vertices(); ++v) {
      const auto a = paper.neighbors(v);
      const auto b = other.neighbors(v);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST(IntersectionGraph, DisjointNetsGiveEmptyGraph) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({2, 3});
  const WeightedGraph ig = intersection_graph(b.build());
  EXPECT_EQ(ig.num_vertices(), 2);
  EXPECT_EQ(ig.num_edges(), 0);
}

TEST(IntersectionGraph, WeightingParseRoundTrip) {
  EXPECT_EQ(parse_ig_weighting("paper"), IgWeighting::kPaper);
  EXPECT_EQ(parse_ig_weighting("uniform"), IgWeighting::kUniform);
  EXPECT_EQ(parse_ig_weighting("overlap"), IgWeighting::kOverlap);
  EXPECT_EQ(parse_ig_weighting("jaccard"), IgWeighting::kJaccard);
  EXPECT_THROW(parse_ig_weighting("clique"), std::invalid_argument);
  EXPECT_STREQ(to_string(IgWeighting::kPaper), "paper");
  EXPECT_STREQ(to_string(IgWeighting::kJaccard), "jaccard");
}

TEST(IntersectionGraph, LargeSharedNetWeightsSmaller) {
  // The weighting is designed so overlaps between large nets count less
  // than overlaps between small nets (Section 2.2).
  HypergraphBuilder b(12);
  // Two small nets sharing module 0.
  b.add_net({0, 1});
  b.add_net({0, 2});
  // Two large nets sharing module 3.
  b.add_net({3, 4, 5, 6, 7});
  b.add_net({3, 8, 9, 10, 11});
  const WeightedGraph ig = intersection_graph(b.build());
  EXPECT_GT(ig.edge_weight(0, 1), ig.edge_weight(2, 3));
}

}  // namespace
}  // namespace netpart
