#include <gtest/gtest.h>

#include <cmath>


#include "graph/clique_model.hpp"
#include "graph/intersection_graph.hpp"
#include "graph/weighted_graph.hpp"
#include "linalg/fiedler.hpp"
#include "linalg/vector_ops.hpp"

namespace netpart {
namespace {

using linalg::fiedler_pair;
using linalg::fiedler_pair_inverse_iteration;
using linalg::FiedlerResult;

WeightedGraph path_graph(std::int32_t n) {
  std::vector<GraphEdge> edges;
  for (std::int32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  return WeightedGraph::from_edges(n, std::move(edges));
}

TEST(InverseIteration, MatchesAnalyticPathLambda2) {
  const std::int32_t n = 12;
  const FiedlerResult r =
      fiedler_pair_inverse_iteration(path_graph(n).laplacian());
  EXPECT_TRUE(r.converged);
  const double expected = 2.0 - 2.0 * std::cos(M_PI / n);
  EXPECT_NEAR(r.lambda2, expected, 1e-6);
}

/// Two dense clusters with one bridge: lambda2 is tiny and well separated
/// from lambda3, the regime where inverse iteration shines.  (On circuits
/// with many near-degenerate small eigenvalues its lambda2/lambda3
/// convergence rate degrades — that is the documented trade-off versus
/// Lanczos, not a bug.)
Hypergraph two_cluster_circuit() {
  HypergraphBuilder b(24);
  for (std::int32_t i = 0; i < 12; ++i)
    for (std::int32_t j = i + 1; j < 12; ++j) {
      b.add_net({i, j});
      b.add_net({12 + i, 12 + j});
    }
  b.add_net({11, 12});
  return b.build();
}

TEST(InverseIteration, AgreesWithLanczosOnGappedInstance) {
  const Hypergraph h = two_cluster_circuit();
  const linalg::CsrMatrix q = intersection_graph(h).laplacian();

  const FiedlerResult lanczos = fiedler_pair(q);
  const FiedlerResult invit = fiedler_pair_inverse_iteration(q);
  ASSERT_TRUE(lanczos.converged);
  ASSERT_TRUE(invit.converged);
  EXPECT_NEAR(invit.lambda2, lanczos.lambda2,
              1e-5 * std::max(1.0, lanczos.lambda2));
  // Eigenvectors agree up to sign (lambda2 simple here).
  const double overlap =
      std::abs(linalg::dot(lanczos.vector, invit.vector));
  EXPECT_GT(overlap, 0.999);
}

TEST(InverseIteration, VectorOrthogonalToOnesAndUnit) {
  const FiedlerResult r =
      fiedler_pair_inverse_iteration(path_graph(20).laplacian());
  double sum = 0.0;
  for (const double v : r.vector) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-8);
  EXPECT_NEAR(linalg::norm(r.vector), 1.0, 1e-10);
}

TEST(InverseIteration, SingletonSafe) {
  const linalg::CsrMatrix q = linalg::CsrMatrix::from_triplets(1, {});
  const FiedlerResult r = fiedler_pair_inverse_iteration(q);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.lambda2, 0.0);
}

TEST(InverseIteration, CliqueModelLaplacianOnGappedInstance) {
  const Hypergraph h = two_cluster_circuit();
  const linalg::CsrMatrix q = clique_expansion(h).laplacian();
  const FiedlerResult a = fiedler_pair(q);
  const FiedlerResult b = fiedler_pair_inverse_iteration(q);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.lambda2, b.lambda2, 1e-5 * std::max(1.0, a.lambda2));
}

}  // namespace
}  // namespace netpart
