/// Robustness tests: malformed and adversarial inputs must produce a
/// ParseError (or another std exception), never a crash, hang, or silently
/// wrong hypergraph.

#include <gtest/gtest.h>

#include <sstream>

#include "circuits/rng.hpp"
#include "io/blif_io.hpp"
#include "io/netlist_io.hpp"

namespace netpart::io {
namespace {

/// Each parser must reject (or cleanly accept) arbitrary byte soup.
class GarbageInputTest : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_garbage(std::uint64_t seed, std::size_t length) {
  Xoshiro256 rng(seed);
  std::string out;
  // Printable-ish alphabet with structure-adjacent characters so the
  // parsers get past trivial rejections occasionally.
  const std::string alphabet =
      "0123456789 \t\n.%#-abcdefg .model.names net modules\\=";
  for (std::size_t i = 0; i < length; ++i)
    out += alphabet[static_cast<std::size_t>(
        rng.below(alphabet.size()))];
  return out;
}

TEST_P(GarbageInputTest, HgrParserNeverCrashes) {
  std::istringstream in(random_garbage(GetParam(), 400));
  try {
    const Hypergraph h = read_hgr(in);
    // Accepted input must at least be internally consistent.
    std::int64_t pins = 0;
    for (NetId n = 0; n < h.num_nets(); ++n) pins += h.net_size(n);
    EXPECT_EQ(pins, h.num_pins());
  } catch (const std::exception&) {
    // Rejection is the expected outcome.
  }
}

TEST_P(GarbageInputTest, NetdParserNeverCrashes) {
  std::istringstream in(random_garbage(GetParam() + 1000, 400));
  try {
    (void)read_netd(in);
  } catch (const std::exception&) {
  }
}

TEST_P(GarbageInputTest, BlifParserNeverCrashes) {
  std::istringstream in(random_garbage(GetParam() + 2000, 400));
  try {
    (void)read_blif(in);
  } catch (const std::exception&) {
  }
}

TEST_P(GarbageInputTest, PartitionParserNeverCrashes) {
  std::istringstream in(random_garbage(GetParam() + 3000, 120));
  try {
    (void)read_partition(in);
  } catch (const std::exception&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageInputTest,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(IoEdgeCases, HgrHugeHeaderCountsRejected) {
  // A header promising far more nets than the stream carries must fail
  // with ParseError (EOF), not allocate unboundedly.
  std::istringstream in("2000000000 5\n1 2\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

TEST(IoEdgeCases, HgrNegativeHeaderRejected) {
  std::istringstream in("-3 5\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

TEST(IoEdgeCases, NetdHugeModuleCountParsesButStaysEmpty) {
  // Large module counts are legal (sparse designs); no nets is fine.
  std::istringstream in("modules 1000000\n");
  const Hypergraph h = read_netd(in);
  EXPECT_EQ(h.num_modules(), 1000000);
  EXPECT_EQ(h.num_nets(), 0);
}

TEST(IoEdgeCases, BlifDeepContinuationChain) {
  std::string text = ".model chain\n.inputs";
  for (int i = 0; i < 200; ++i) text += " \\\n s" + std::to_string(i);
  text += "\n.names s0 s1 out\n11 1\n.end\n";
  std::istringstream in(text);
  const BlifModel model = read_blif(in);
  EXPECT_EQ(model.num_inputs, 200);
}

TEST(IoEdgeCases, EmptyNetLineInHgrIsEmptyNet) {
  // An .hgr net line may legally be empty only if the format allows
  // zero-pin nets; ours treats a blank line as skippable, so the net count
  // must then mismatch and raise.
  std::istringstream in("2 3\n1 2\n\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

}  // namespace
}  // namespace netpart::io
