/// Robustness tests: malformed and adversarial inputs must produce a
/// ParseError (or another std exception), never a crash, hang, or silently
/// wrong hypergraph.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <limits>
#include <sstream>
#include <string_view>
#include <vector>

#include "circuits/rng.hpp"
#include "io/blif_io.hpp"
#include "io/netlist_io.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/prom_export.hpp"
#include "obs/trace_export.hpp"
#include "repart/edit_script.hpp"
#include "server/protocol.hpp"

namespace netpart::io {
namespace {

/// Each parser must reject (or cleanly accept) arbitrary byte soup.
class GarbageInputTest : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_garbage(std::uint64_t seed, std::size_t length) {
  Xoshiro256 rng(seed);
  std::string out;
  // Printable-ish alphabet with structure-adjacent characters so the
  // parsers get past trivial rejections occasionally.
  const std::string alphabet =
      "0123456789 \t\n.%#-abcdefg .model.names net modules\\=";
  for (std::size_t i = 0; i < length; ++i)
    out += alphabet[static_cast<std::size_t>(
        rng.below(alphabet.size()))];
  return out;
}

TEST_P(GarbageInputTest, HgrParserNeverCrashes) {
  std::istringstream in(random_garbage(GetParam(), 400));
  try {
    const Hypergraph h = read_hgr(in);
    // Accepted input must at least be internally consistent.
    std::int64_t pins = 0;
    for (NetId n = 0; n < h.num_nets(); ++n) pins += h.net_size(n);
    EXPECT_EQ(pins, h.num_pins());
  } catch (const std::exception&) {
    // Rejection is the expected outcome.
  }
}

TEST_P(GarbageInputTest, NetdParserNeverCrashes) {
  std::istringstream in(random_garbage(GetParam() + 1000, 400));
  try {
    (void)read_netd(in);
  } catch (const std::exception&) {
  }
}

TEST_P(GarbageInputTest, BlifParserNeverCrashes) {
  std::istringstream in(random_garbage(GetParam() + 2000, 400));
  try {
    (void)read_blif(in);
  } catch (const std::exception&) {
  }
}

TEST_P(GarbageInputTest, PartitionParserNeverCrashes) {
  std::istringstream in(random_garbage(GetParam() + 3000, 120));
  try {
    (void)read_partition(in);
  } catch (const std::exception&) {
  }
}

/// A small netlist the edit-script fuzzers apply against.
Hypergraph fuzz_target() {
  HypergraphBuilder builder(6);
  builder.add_net({0, 1});
  builder.add_net({1, 2, 3});
  builder.add_net({3, 4});
  builder.add_net({4, 5});
  return builder.build();
}

std::string random_edit_garbage(std::uint64_t seed, std::size_t length) {
  Xoshiro256 rng(seed);
  std::string out;
  // Edit-op-adjacent alphabet so scripts occasionally parse and reach the
  // applier, where the semantic validation (names, ids) takes over.
  const std::string alphabet =
      "0123456789 \n#-addnetremovmpicu add-net remove-net move-pin commit n0 ";
  for (std::size_t i = 0; i < length; ++i)
    out += alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))];
  return out;
}

TEST_P(GarbageInputTest, EditScriptParserAndApplierNeverCrash) {
  std::istringstream in(random_edit_garbage(GetParam() + 4000, 300));
  try {
    const repart::EditScript script = repart::read_edit_script(in);
    // Parsed scripts must also apply cleanly or be rejected cleanly.
    repart::EditableNetlist editor(fuzz_target());
    repart::EditScriptApplier applier(editor);
    for (const repart::EditBatch& batch : script.batches) applier.apply(batch);
  } catch (const std::exception&) {
    // Rejection (ParseError at parse time, invalid_argument/out_of_range at
    // apply time) is the expected outcome.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageInputTest,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(IoEdgeCases, HgrHugeHeaderCountsRejected) {
  // A header promising far more nets than the stream carries must fail
  // with ParseError (EOF), not allocate unboundedly.
  std::istringstream in("2000000000 5\n1 2\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

TEST(IoEdgeCases, HgrNegativeHeaderRejected) {
  std::istringstream in("-3 5\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

TEST(IoEdgeCases, NetdHugeModuleCountParsesButStaysEmpty) {
  // Large module counts are legal (sparse designs); no nets is fine.
  std::istringstream in("modules 1000000\n");
  const Hypergraph h = read_netd(in);
  EXPECT_EQ(h.num_modules(), 1000000);
  EXPECT_EQ(h.num_nets(), 0);
}

TEST(IoEdgeCases, BlifDeepContinuationChain) {
  std::string text = ".model chain\n.inputs";
  for (int i = 0; i < 200; ++i) text += " \\\n s" + std::to_string(i);
  text += "\n.names s0 s1 out\n11 1\n.end\n";
  std::istringstream in(text);
  const BlifModel model = read_blif(in);
  EXPECT_EQ(model.num_inputs, 200);
}

/// Hand-written mutation corpus for the edits-file format: every entry must
/// be rejected with a clean exception — at parse time for syntactic damage,
/// at apply time for semantic damage — and never crash or corrupt state.
TEST(IoEdgeCases, EditScriptMutationCorpusRejectedCleanly) {
  const struct {
    const char* label;
    const char* text;
    bool parses;  // syntactically fine, must then fail in the applier
  } corpus[] = {
      {"truncated add-net (no name)", "add-net\n", false},
      {"truncated add-net (no pins)", "add-net x\n", false},
      {"truncated move-pin", "move-pin n3 1\n", false},
      {"truncated remove-net", "remove-net\n", false},
      {"remove-net extra args", "remove-net n0 n1\n", false},
      {"commit with arguments", "commit now\n", false},
      {"add-module with arguments", "add-module 3\n", false},
      {"unknown op", "frobnicate n0\n", false},
      {"non-numeric pin", "add-net x 0 one\n", false},
      {"negative pin", "add-net x 0 -1\n", false},
      {"huge id overflows int32", "add-net x 0 999999999999999999999\n", false},
      {"remove-module non-numeric", "remove-module n0\n", false},
      {"duplicate net name", "add-net dup 0 1\nadd-net dup 1 2\n", true},
      {"dangling net ref", "remove-net nope\n", true},
      {"move-pin unknown net", "move-pin ghost 0 1\n", true},
      {"move-pin module not a pin", "move-pin n0 5 2\n", true},
      {"move-pin module out of range", "move-pin n0 0 99\n", true},
      {"add-net pin out of range", "add-net x 0 42\n", true},
      {"remove-module out of range", "remove-module 17\n", true},
      {"net name reused after removal", "remove-net n1\nadd-net n1 0 1\n",
       true},
  };
  for (const auto& entry : corpus) {
    std::istringstream in(entry.text);
    if (!entry.parses) {
      EXPECT_THROW((void)repart::read_edit_script(in), ParseError)
          << entry.label;
      continue;
    }
    repart::EditScript script;
    ASSERT_NO_THROW(script = repart::read_edit_script(in)) << entry.label;
    repart::EditableNetlist editor(fuzz_target());
    repart::EditScriptApplier applier(editor);
    const std::int32_t nets_before = editor.num_nets();
    bool rejected = false;
    try {
      for (const repart::EditBatch& batch : script.batches)
        applier.apply(batch);
    } catch (const std::invalid_argument&) {
      rejected = true;
    } catch (const std::out_of_range&) {
      rejected = true;
    }
    if (std::string(entry.label) == "net name reused after removal") {
      // This one is legal by design: names are handles, removal frees them.
      EXPECT_FALSE(rejected) << entry.label;
      EXPECT_EQ(editor.num_nets(), nets_before) << entry.label;
    } else {
      EXPECT_TRUE(rejected) << entry.label;
    }
  }
}

TEST(IoEdgeCases, EditScriptPositiveRoundTrip) {
  std::istringstream in(
      "# ECO\n"
      "add-module\n"
      "add-net bridge 0 6\n"
      "commit\n"
      "move-pin n2 3 5\n"
      "remove-net n0\n");
  const repart::EditScript script = repart::read_edit_script(in);
  ASSERT_EQ(script.batches.size(), 2u);  // trailing batch is implicit
  repart::EditableNetlist editor(fuzz_target());
  repart::EditScriptApplier applier(editor);
  for (const repart::EditBatch& batch : script.batches) applier.apply(batch);
  EXPECT_EQ(editor.num_modules(), 7);
  EXPECT_EQ(editor.num_nets(), 4);  // 4 - 1 removed + 1 added
}

TEST(IoEdgeCases, EmptyNetLineInHgrIsEmptyNet) {
  // An .hgr net line may legally be empty only if the format allows
  // zero-pin nets; ours treats a blank line as skippable, so the net count
  // must then mismatch and raise.
  std::istringstream in("2 3\n1 2\n\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

}  // namespace
}  // namespace netpart::io

// ---------------------------------------------------------------------------
// netpartd protocol fuzzing: the request parser sits directly behind the
// socket, so arbitrary byte soup must always come back as a structured
// ParseResult — never an uncaught exception, crash, or over-read.
// ---------------------------------------------------------------------------

namespace netpart::server {
namespace {

std::string random_protocol_garbage(std::uint64_t seed, std::size_t length) {
  Xoshiro256 rng(seed);
  std::string out;
  // JSON-adjacent alphabet (plus real field names) so some inputs get deep
  // into the parser and validator before failing.
  const std::string alphabet =
      "{}[]\":,0123456789.-+eE \\untrflips"
      "\"op\" \"id\" \"session\" \"load\" \"partition\" \"circuit\" ";
  for (std::size_t i = 0; i < length; ++i)
    out += alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))];
  return out;
}

class ProtocolGarbageTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolGarbageTest, RequestParserNeverThrows) {
  const std::string line = random_protocol_garbage(GetParam(), 300);
  Request req;
  std::string error;
  const ParseResult result = parse_request(line, req, error);
  if (result != ParseResult::kOk) {
    EXPECT_FALSE(error.empty()) << line;
  } else {
    // Accepted requests carry a validated op and any required fields.
    EXPECT_FALSE(req.op_name.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolGarbageTest,
                         ::testing::Range<std::uint64_t>(0, 32));

TEST(ProtocolEdgeCases, EveryTruncationOfAValidRequestIsHandled) {
  const std::string full =
      R"({"id":7,"op":"load","session":"s","hgr":"2 3\n1 2\n2 3\n",)"
      R"("timeout_ms":250,"use_cache":false,"trace":true})";
  Request req;
  std::string error;
  ASSERT_EQ(parse_request(full, req, error), ParseResult::kOk) << error;
  EXPECT_EQ(req.id, 7);
  EXPECT_EQ(req.timeout_ms, 250);
  EXPECT_FALSE(req.use_cache);
  EXPECT_TRUE(req.trace);
  for (std::size_t len = 0; len < full.size(); ++len) {
    const ParseResult r =
        parse_request(std::string_view(full).substr(0, len), req, error);
    EXPECT_NE(r, ParseResult::kOk) << "prefix length " << len;
  }
}

TEST(ProtocolEdgeCases, DeepNestingIsBoundedNotStackOverflowed) {
  std::string deep(1000, '[');
  Request req;
  std::string error;
  EXPECT_EQ(parse_request(deep, req, error), ParseResult::kMalformed);
  JsonValue v;
  EXPECT_FALSE(parse_json(deep, v, error));
  EXPECT_NE(error.find("nesting"), std::string::npos);
  // Matched-but-deep nesting fails the same way (the depth limit, not the
  // truncation, is what rejects it).
  std::string matched = std::string(100, '[') + std::string(100, ']');
  EXPECT_FALSE(parse_json(matched, v, error));
}

TEST(ProtocolEdgeCases, OversizedButValidFrameParses) {
  // Frame-size enforcement lives in the server's reader, not the parser;
  // the parser itself must stay linear and correct on megabyte inputs.
  std::string big = R"({"id":1,"op":"load","session":"s","hgr":")";
  big.append(1 << 20, 'x');
  big += "\"}";
  Request req;
  std::string error;
  EXPECT_EQ(parse_request(big, req, error), ParseResult::kOk) << error;
  EXPECT_EQ(req.hgr.size(), std::size_t{1} << 20);
}

TEST(ProtocolEdgeCases, ValidationTable) {
  const struct {
    const char* label;
    const char* line;
    ParseResult expected;
  } corpus[] = {
      {"empty", "", ParseResult::kMalformed},
      {"not json", "hello there", ParseResult::kMalformed},
      {"bare number", "42", ParseResult::kMalformed},
      {"array not object", "[1,2]", ParseResult::kMalformed},
      {"trailing content", R"({"op":"ping"} extra)", ParseResult::kMalformed},
      {"raw control char in string", "{\"op\":\"pi\x01ng\"}",
       ParseResult::kMalformed},
      {"lone high surrogate", R"({"op":"\ud800"})", ParseResult::kMalformed},
      {"lone low surrogate", R"({"op":"\udc00"})", ParseResult::kMalformed},
      {"bad escape", R"({"op":"\q"})", ParseResult::kMalformed},
      {"unterminated string", R"({"op":"ping)", ParseResult::kMalformed},
      {"missing op", R"({"id":1})", ParseResult::kInvalid},
      {"op wrong type", R"({"op":3})", ParseResult::kInvalid},
      {"unknown op", R"({"op":"frobnicate"})", ParseResult::kUnknownOp},
      {"negative id", R"({"id":-5,"op":"ping"})", ParseResult::kInvalid},
      {"fractional id", R"({"id":1.5,"op":"ping"})", ParseResult::kInvalid},
      {"id beyond 2^53", R"({"id":1e300,"op":"ping"})", ParseResult::kInvalid},
      {"load without session", R"({"op":"load","circuit":"bm1"})",
       ParseResult::kInvalid},
      {"load without source",
       R"({"op":"load","session":"s"})", ParseResult::kInvalid},
      {"load with two sources",
       R"({"op":"load","session":"s","circuit":"bm1","path":"x.hgr"})",
       ParseResult::kInvalid},
      {"edit without script", R"({"op":"edit","session":"s"})",
       ParseResult::kInvalid},
      {"partition without session", R"({"op":"partition"})",
       ParseResult::kInvalid},
      {"timeout wrong type",
       R"({"op":"ping","timeout_ms":"soon"})", ParseResult::kInvalid},
      {"use_cache wrong type",
       R"({"op":"partition","session":"s","use_cache":1})",
       ParseResult::kInvalid},
      {"valid ping", R"({"op":"ping"})", ParseResult::kOk},
      {"valid unicode session",
       R"({"op":"unload","session":"é😀"})", ParseResult::kOk},
  };
  for (const auto& entry : corpus) {
    Request req;
    std::string error;
    EXPECT_EQ(parse_request(entry.line, req, error), entry.expected)
        << entry.label << ": " << error;
  }
}

TEST(ProtocolEdgeCases, ErrorResponsesEchoRecoverableIds) {
  // Even an invalid request echoes its id when the frame was an object
  // carrying a well-formed one, so clients can correlate failures.
  Request req;
  std::string error;
  EXPECT_EQ(parse_request(R"({"id":9,"op":"edit","session":"s"})", req, error),
            ParseResult::kInvalid);
  EXPECT_EQ(req.id, 9);
  const std::string response = error_response(req.id, "bad_request", error);
  EXPECT_NE(response.find("\"id\":9"), std::string::npos);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
}

}  // namespace
}  // namespace netpart::server

// ---------------------------------------------------------------------------
// Exporter fuzzing: to_prometheus and to_chrome_trace are pure functions of
// a snapshot, so however hostile the metric names and values, they must not
// crash, and their Prometheus output must stay within the exposition
// charset.  (Byte-level format checks live in obs_test; this is the
// never-crash / always-well-formed sweep.)
// ---------------------------------------------------------------------------

namespace netpart::obs {
namespace {

std::string fuzz_name(Xoshiro256& rng) {
  static constexpr std::string_view alphabet =
      "abz019._-:{}\"\\\n\t #/\xc3\xa9";
  std::string out;
  const std::uint64_t len = rng.below(24);
  for (std::uint64_t i = 0; i < len; ++i)
    out += alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))];
  return out;
}

double fuzz_value(Xoshiro256& rng) {
  switch (rng.below(6)) {
    case 0: return std::numeric_limits<double>::quiet_NaN();
    case 1: return std::numeric_limits<double>::infinity();
    case 2: return -std::numeric_limits<double>::infinity();
    case 3: return -1e308;
    case 4: return 0.0;
    default:
      return static_cast<double>(rng.below(1u << 30)) * 1e-3;
  }
}

MetricsSnapshot fuzz_snapshot(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  MetricsSnapshot snap;
  snap.run_label = fuzz_name(rng);
  for (std::uint64_t i = 0, n = rng.below(16); i < n; ++i)
    snap.counters.push_back(
        {fuzz_name(rng), static_cast<std::int64_t>(rng.below(1u << 20))});
  for (std::uint64_t i = 0, n = rng.below(16); i < n; ++i)
    snap.gauges.push_back({fuzz_name(rng), fuzz_value(rng)});
  for (std::uint64_t i = 0, n = rng.below(8); i < n; ++i) {
    HistogramEntry h;
    h.name = fuzz_name(rng);
    for (std::uint64_t s = 0, m = rng.below(64); s < m; ++s)
      histogram_record(h, fuzz_value(rng));
    snap.histograms.push_back(std::move(h));
  }
  for (std::uint64_t i = 0, n = rng.below(8); i < n; ++i) {
    RollingEntry entry;
    entry.name = fuzz_name(rng);
    entry.window_ms = static_cast<std::int64_t>(rng.below(100000));
    for (std::uint64_t s = 0, m = rng.below(64); s < m; ++s)
      histogram_record(entry.window, fuzz_value(rng));
    snap.rolling.push_back(std::move(entry));
  }
  // A deep, branching span tree with hostile names and non-finite timings.
  SpanNode* cursor = nullptr;
  for (int depth = 0; depth < 40; ++depth) {
    SpanNode node;
    node.name = fuzz_name(rng);
    node.wall_ms = fuzz_value(rng);
    node.count = static_cast<std::int64_t>(rng.below(5));
    if (cursor == nullptr) {
      snap.spans.push_back(std::move(node));
      cursor = &snap.spans.back();
    } else {
      cursor->children.push_back(std::move(node));
      if (rng.below(4) != 0) cursor = &cursor->children.back();
    }
  }
  return snap;
}

class ExporterFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExporterFuzzTest, PrometheusOutputStaysInCharset) {
  const MetricsSnapshot snap = fuzz_snapshot(GetParam());
  const std::string body = to_prometheus(snap);
  EXPECT_EQ(body, to_prometheus(snap));  // deterministic on hostile input too
  // Metric-name tokens (first token of every non-comment line) must only
  // contain exposition-legal characters, whatever we fed in.
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const std::string name = line.substr(0, line.find_first_of(" {"));
    ASSERT_FALSE(name.empty()) << line;
    for (const char c : name) {
      const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         (c >= '0' && c <= '9') || c == '_' || c == ':';
      ASSERT_TRUE(legal) << "illegal char in metric name: " << line;
    }
  }
}

TEST_P(ExporterFuzzTest, ChromeTraceNeverEmitsRawControlBytes) {
  const MetricsSnapshot snap = fuzz_snapshot(GetParam());
  const std::string trace = to_chrome_trace(snap);
  EXPECT_EQ(trace, to_chrome_trace(snap));
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(trace.back(), '}');
  for (const char c : trace)
    ASSERT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\0')
        << "unescaped control byte in trace output";
}

/// Hostile span names through the profiler must still yield a folded export
/// that line-oriented consumers (flamegraph.pl, validate_folded.py) can
/// split: exactly one space per line, positive integer count, sanitized
/// frames with no separators or control bytes.
TEST_P(ExporterFuzzTest, FoldedProfileStaysLineParseable) {
#if NETPART_OBS_ENABLED
  Profiler& profiler = Profiler::instance();
  ASSERT_TRUE(profiler.start(0));
  Xoshiro256 rng(GetParam() + 9000);
  for (int round = 0; round < 8; ++round) {
    // Random depth, sometimes past the profiler's frame-depth cap.
    const auto depth = static_cast<int>(1 + rng.below(24));
    for (int d = 0; d < depth; ++d) Profiler::push_frame(fuzz_name(rng));
    profiler.sample_now();
    for (int d = 0; d < depth; ++d) Profiler::pop_frame();
  }
  profiler.sample_now();  // one unattributed
  profiler.stop();

  const ProfileSnapshot snap = profiler.snapshot();
  const std::string folded = snap.to_folded();
  EXPECT_EQ(folded, snap.to_folded());  // deterministic on hostile input too
  std::istringstream in(folded);
  std::string line;
  std::vector<std::string> paths;
  std::int64_t total = 0;
  while (std::getline(in, line)) {
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find(' ', space + 1), std::string::npos) << line;
    const std::string path = line.substr(0, space);
    ASSERT_FALSE(path.empty()) << line;
    const std::int64_t count = std::stoll(line.substr(space + 1));
    EXPECT_GT(count, 0) << line;
    total += count;
    if (path != "(unattributed)") {
      for (const char c : path) {
        ASSERT_TRUE(static_cast<unsigned char>(c) >= 0x20 && c != ' ' &&
                    c != '(' && c != ')')
            << "unsanitized byte in folded path: " << line;
      }
      for (std::size_t at = 0; (at = path.find(';', at)) != std::string::npos;
           ++at)
        ASSERT_NE(path[at + 1], ';') << "empty frame in " << line;
    }
    paths.push_back(path);
  }
  EXPECT_EQ(total, snap.total_samples);
  std::vector<std::string> sorted = paths;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(paths, sorted);
  // The JSON form must parse whatever the span names were.
  server::JsonValue parsed;
  std::string error;
  EXPECT_TRUE(server::parse_json(snap.to_json(), parsed, error)) << error;

  profiler.start(0);  // leave the process-wide table empty
  profiler.stop();
#endif
}

/// Hostile kinds, field names, and non-finite values through the event
/// ring: both drain formats must stay parseable JSON.
TEST_P(ExporterFuzzTest, EventStreamStaysJsonParseable) {
  EventRing& ring = EventRing::instance();
  Xoshiro256 rng(GetParam() + 11000);
  // The ring stores pointers, not copies; a deque keeps every hostile
  // string at a stable address until after the drains.
  std::deque<std::string> corpus;
  ring.arm();
  constexpr int kEmits = 64;
  for (int i = 0; i < kEmits; ++i) {
    const char* kind = corpus.emplace_back(fuzz_name(rng)).c_str();
    const char* field = corpus.emplace_back(fuzz_name(rng)).c_str();
    ring.emit(kind, {{field, fuzz_value(rng)},
                     {"i", static_cast<double>(i)}});
  }
  ring.disarm();

  server::JsonValue parsed;
  std::string error;
  const std::string array = ring.drain_json_array();
  ASSERT_TRUE(server::parse_json(array, parsed, error)) << error;
  const std::string ndjson = ring.drain_ndjson();
  std::istringstream in(ndjson);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    server::JsonValue record;
    ASSERT_TRUE(server::parse_json(line, record, error))
        << error << ": " << line;
    ++lines;
  }
#if NETPART_OBS_ENABLED
  EXPECT_EQ(parsed.array.size(), static_cast<std::size_t>(kEmits));
  EXPECT_EQ(lines, static_cast<std::size_t>(kEmits));
#else
  EXPECT_TRUE(parsed.array.empty());
  EXPECT_EQ(lines, 0u);
#endif
  ring.arm();  // leave the ring empty
  ring.disarm();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExporterFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 48));

}  // namespace
}  // namespace netpart::obs
