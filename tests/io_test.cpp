#include "io/netlist_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace netpart::io {
namespace {

TEST(HgrReader, ParsesBasicFile) {
  std::istringstream in("3 4\n1 2\n2 3 4\n1 4\n");
  const Hypergraph h = read_hgr(in);
  EXPECT_EQ(h.num_nets(), 3);
  EXPECT_EQ(h.num_modules(), 4);
  EXPECT_TRUE(h.contains(0, 0));
  EXPECT_TRUE(h.contains(0, 1));
  EXPECT_TRUE(h.contains(1, 3));
}

TEST(HgrReader, SkipsCommentsAndBlankLines) {
  std::istringstream in("% header comment\n\n2 2\n% net comment\n1 2\n\n1\n");
  const Hypergraph h = read_hgr(in);
  EXPECT_EQ(h.num_nets(), 2);
  EXPECT_EQ(h.net_size(1), 1);
}

TEST(HgrReader, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(read_hgr(in), ParseError);
}

TEST(HgrReader, RejectsOutOfRangePin) {
  std::istringstream in("1 2\n1 3\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

TEST(HgrReader, RejectsZeroPin) {
  std::istringstream in("1 2\n0 1\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

TEST(HgrReader, RejectsTruncatedFile) {
  std::istringstream in("3 4\n1 2\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

TEST(HgrReader, ParsesNetWeightsWithFormatFlagOne) {
  // hMETIS fmt flag 1: the first number on each net line is its weight.
  std::istringstream in("2 3 1\n5 1 2\n1 2 3\n");
  const Hypergraph h = read_hgr(in);
  EXPECT_EQ(h.net_weight(0), 5);
  EXPECT_EQ(h.net_weight(1), 1);
  EXPECT_EQ(h.net_size(0), 2);
  EXPECT_EQ(h.total_net_weight(), 6);
  EXPECT_FALSE(h.is_unweighted());
}

TEST(HgrReader, RejectsVertexWeightFormatFlags) {
  std::istringstream in10("1 2 10\n1 2\n");
  EXPECT_THROW(read_hgr(in10), ParseError);
  std::istringstream in11("1 2 11\n1 1 2\n");
  EXPECT_THROW(read_hgr(in11), ParseError);
}

TEST(HgrReader, RejectsBadNetWeight) {
  std::istringstream zero("1 2 1\n0 1 2\n");
  EXPECT_THROW(read_hgr(zero), ParseError);
}

TEST(HgrRoundTrip, WeightedWriteThenRead) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 7);
  b.add_net({1, 2});
  const Hypergraph original = b.build();
  std::stringstream buffer;
  write_hgr(buffer, original);
  const Hypergraph parsed = read_hgr(buffer);
  EXPECT_EQ(parsed.net_weight(0), 7);
  EXPECT_EQ(parsed.net_weight(1), 1);
  EXPECT_EQ(parsed.net_size(0), 2);
}

TEST(HgrReader, RejectsGarbageToken) {
  std::istringstream in("1 2\n1 banana\n");
  EXPECT_THROW(read_hgr(in), ParseError);
}

TEST(HgrRoundTrip, WriteThenReadIdentical) {
  HypergraphBuilder b(5);
  b.add_net({0, 4});
  b.add_net({1, 2, 3});
  b.add_net({0, 1, 2, 3, 4});
  const Hypergraph original = b.build();

  std::stringstream buffer;
  write_hgr(buffer, original);
  const Hypergraph parsed = read_hgr(buffer);

  ASSERT_EQ(parsed.num_nets(), original.num_nets());
  ASSERT_EQ(parsed.num_modules(), original.num_modules());
  for (NetId n = 0; n < original.num_nets(); ++n) {
    const auto a = original.pins(n);
    const auto b2 = parsed.pins(n);
    ASSERT_EQ(a.size(), b2.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b2[i]);
  }
}

TEST(NetdReader, ParsesNamedFormat) {
  std::istringstream in(
      "# a comment\nnetlist mychip\nmodules 3\nnet 0 1\nnet 1 2\n");
  const Hypergraph h = read_netd(in);
  EXPECT_EQ(h.name(), "mychip");
  EXPECT_EQ(h.num_modules(), 3);
  EXPECT_EQ(h.num_nets(), 2);
  EXPECT_TRUE(h.contains(1, 2));
}

TEST(NetdReader, RejectsNetBeforeModules) {
  std::istringstream in("net 0 1\nmodules 3\n");
  EXPECT_THROW(read_netd(in), ParseError);
}

TEST(NetdReader, RejectsUnknownKeyword) {
  std::istringstream in("modules 2\nwire 0 1\n");
  EXPECT_THROW(read_netd(in), ParseError);
}

TEST(NetdReader, RejectsMissingModules) {
  std::istringstream in("# nothing\n");
  EXPECT_THROW(read_netd(in), ParseError);
}

TEST(NetdRoundTrip, PreservesNameAndNets) {
  HypergraphBuilder b(4);
  b.set_name("roundtrip");
  b.add_net({0, 3});
  b.add_net({1, 2, 3});
  const Hypergraph original = b.build();

  std::stringstream buffer;
  write_netd(buffer, original);
  const Hypergraph parsed = read_netd(buffer);
  EXPECT_EQ(parsed.name(), "roundtrip");
  ASSERT_EQ(parsed.num_nets(), 2);
  EXPECT_TRUE(parsed.contains(1, 2));
}

TEST(PartitionIo, RoundTrip) {
  Partition p(4);
  p.assign(1, Side::kRight);
  p.assign(3, Side::kRight);
  std::stringstream buffer;
  write_partition(buffer, p);
  const Partition parsed = read_partition(buffer);
  EXPECT_EQ(parsed, p);
}

TEST(PartitionIo, AcceptsDigitAliases) {
  std::istringstream in("0\n1\n0\n");
  const Partition p = read_partition(in);
  ASSERT_EQ(p.num_modules(), 3);
  EXPECT_EQ(p.side(0), Side::kLeft);
  EXPECT_EQ(p.side(1), Side::kRight);
}

TEST(PartitionIo, RejectsBadCharacter) {
  std::istringstream in("L\nX\n");
  EXPECT_THROW(read_partition(in), ParseError);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_hgr_file("/nonexistent/path/file.hgr"),
               std::runtime_error);
}

TEST(FileIo, WriteAndReadBack) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2});
  const Hypergraph h = b.build();
  const std::string path = ::testing::TempDir() + "/netpart_io_test.hgr";
  write_hgr_file(path, h);
  const Hypergraph parsed = read_hgr_file(path);
  EXPECT_EQ(parsed.num_nets(), 1);
  EXPECT_EQ(parsed.net_size(0), 3);
}

}  // namespace
}  // namespace netpart::io
