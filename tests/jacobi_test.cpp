#include "linalg/jacobi.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace netpart::linalg {
namespace {

TEST(Jacobi, DiagonalMatrix) {
  const std::vector<double> a{3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0};
  const DenseEigen eig = jacobi_eigen(a, 3);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(Jacobi, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]]: eigenvalues 1 and 3.
  const std::vector<double> a{2.0, 1.0, 1.0, 2.0};
  const DenseEigen eig = jacobi_eigen(a, 2);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
}

TEST(Jacobi, EigenpairsSatisfyDefinition) {
  // A symmetric 4x4 with distinct eigenvalues.
  const std::vector<double> a{
      4.0, 1.0, 0.5, 0.0,  //
      1.0, 3.0, 0.2, 0.7,  //
      0.5, 0.2, 2.0, 0.1,  //
      0.0, 0.7, 0.1, 1.0,
  };
  const std::size_t n = 4;
  const DenseEigen eig = jacobi_eigen(a, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        av += a[i * n + k] * eig.vectors[j * n + k];
      EXPECT_NEAR(av, eig.values[j] * eig.vectors[j * n + i], 1e-10)
          << "pair " << j << " row " << i;
    }
  }
}

TEST(Jacobi, VectorsOrthonormal) {
  const std::vector<double> a{
      1.0, 2.0, 0.0,  //
      2.0, 5.0, 1.0,  //
      0.0, 1.0, 3.0,
  };
  const std::size_t n = 3;
  const DenseEigen eig = jacobi_eigen(a, n);
  for (std::size_t x = 0; x < n; ++x)
    for (std::size_t y = 0; y < n; ++y) {
      double d = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        d += eig.vectors[x * n + i] * eig.vectors[y * n + i];
      EXPECT_NEAR(d, x == y ? 1.0 : 0.0, 1e-11);
    }
}

TEST(Jacobi, LaplacianOfTriangle) {
  // K3 Laplacian: eigenvalues 0, 3, 3.
  const std::vector<double> a{
      2.0, -1.0, -1.0,  //
      -1.0, 2.0, -1.0,  //
      -1.0, -1.0, 2.0,
  };
  const DenseEigen eig = jacobi_eigen(a, 3);
  EXPECT_NEAR(eig.values[0], 0.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(Jacobi, RejectsSizeMismatch) {
  EXPECT_THROW(jacobi_eigen({1.0, 2.0}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace netpart::linalg
