#include "fm/kl.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"
#include "fm/fm_partition.hpp"
#include "graph/clique_model.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

Hypergraph dumbbell() {
  HypergraphBuilder b(8);
  for (std::int32_t i = 0; i < 4; ++i)
    for (std::int32_t j = i + 1; j < 4; ++j) {
      b.add_net({i, j});
      b.add_net({4 + i, 4 + j});
    }
  b.add_net({3, 4});
  return b.build();
}

TEST(WeightedEdgeCut, HandComputed) {
  const WeightedGraph g = WeightedGraph::from_edges(
      4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 0.5}});
  Partition p(4);
  p.assign(2, Side::kRight);
  p.assign(3, Side::kRight);
  EXPECT_DOUBLE_EQ(weighted_edge_cut(g, p), 2.0);
  p.flip(3);
  EXPECT_DOUBLE_EQ(weighted_edge_cut(g, p), 2.5);
}

TEST(KlPass, NeverWorsensCut) {
  const Hypergraph h = dumbbell();
  const WeightedGraph g = clique_expansion(h);
  Partition p = random_balanced_partition(8, 3);
  const double before = weighted_edge_cut(g, p);
  kl_pass(g, p, 24);
  EXPECT_LE(weighted_edge_cut(g, p), before + 1e-12);
}

TEST(KlPass, PreservesBalanceExactly) {
  const Hypergraph h = dumbbell();
  const WeightedGraph g = clique_expansion(h);
  Partition p = random_balanced_partition(8, 5);
  const std::int32_t left_before = p.size(Side::kLeft);
  kl_pass(g, p, 24);
  EXPECT_EQ(p.size(Side::kLeft), left_before);
}

TEST(KlPass, ReportedGainMatchesCutDelta) {
  const Hypergraph h = dumbbell();
  const WeightedGraph g = clique_expansion(h);
  Partition p = random_balanced_partition(8, 9);
  const double before = weighted_edge_cut(g, p);
  const double gain = kl_pass(g, p, 24);
  EXPECT_NEAR(before - weighted_edge_cut(g, p), gain, 1e-12);
}

TEST(KlBisection, RecoversDumbbellOptimum) {
  const KlResult r = kl_bisection(dumbbell());
  EXPECT_EQ(r.nets_cut, 1);
  EXPECT_EQ(r.partition.size(Side::kLeft), 4);
  EXPECT_NEAR(r.edge_cut, 1.0, 1e-12);
}

TEST(KlBisection, ConsistentOnGeneratedCircuit) {
  GeneratorConfig c;
  c.name = "kl-driver";
  c.num_modules = 120;
  c.num_nets = 140;
  c.leaf_max = 12;
  const Hypergraph h = generate_circuit(c).hypergraph;
  KlOptions options;
  options.num_starts = 2;
  const KlResult r = kl_bisection(h, options);
  EXPECT_TRUE(r.partition.is_proper());
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
  EXPECT_DOUBLE_EQ(r.ratio, ratio_cut(h, r.partition));
  EXPECT_NEAR(r.edge_cut,
              weighted_edge_cut(clique_expansion(h), r.partition), 1e-9);
  // Near-bisection: sizes differ by at most 1 (KL swaps preserve counts).
  EXPECT_LE(std::abs(r.partition.size(Side::kLeft) -
                     r.partition.size(Side::kRight)),
            1);
}

TEST(KlBisection, BeatsRandomStart) {
  GeneratorConfig c;
  c.name = "kl-improves";
  c.num_modules = 100;
  c.num_nets = 120;
  c.leaf_max = 10;
  const Hypergraph h = generate_circuit(c).hypergraph;
  const WeightedGraph g = clique_expansion(h);
  const double random_cut =
      weighted_edge_cut(g, random_balanced_partition(100, 0xBEEFULL));
  KlOptions options;
  options.num_starts = 2;
  const KlResult r = kl_bisection(h, options);
  EXPECT_LT(r.edge_cut, random_cut);
}

TEST(KlBisection, TrivialInstanceSafe) {
  HypergraphBuilder b(1);
  b.add_net({0});
  const KlResult r = kl_bisection(b.build());
  EXPECT_EQ(r.nets_cut, 0);
  EXPECT_DOUBLE_EQ(r.edge_cut, 0.0);
}

}  // namespace
}  // namespace netpart
