#include "core/kway_refine.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"

namespace netpart {
namespace {

Hypergraph circuit(std::int32_t n, const char* name) {
  GeneratorConfig c;
  c.name = name;
  c.num_modules = n;
  c.num_nets = n + n / 10;
  c.leaf_max = 16;
  return generate_circuit(c).hypergraph;
}

TEST(KwayRefine, FixesObviouslyMisplacedModule) {
  // Three tight pairs in three blocks, but module 5 starts in the wrong
  // block: {0,1} | {2,3} | {4} with 5 in block 0.
  HypergraphBuilder b(6);
  b.add_net({0, 1});
  b.add_net({2, 3});
  b.add_net({4, 5});
  b.add_net({4, 5});
  const Hypergraph h = b.build();
  const MultiwayPartition start({0, 0, 1, 1, 2, 0});
  const KwayRefineResult r = kway_refine(h, start);
  EXPECT_EQ(r.partition.block_of(5), 2);
  EXPECT_EQ(r.cost_after, 0);
  EXPECT_GT(r.cost_before, 0);
  EXPECT_GE(r.moves_made, 1);
}

TEST(KwayRefine, NeverIncreasesCost) {
  const Hypergraph h = circuit(300, "kway-mono");
  // Round-robin start: terrible, lots of room to improve.
  std::vector<std::int32_t> assignment(300);
  for (std::int32_t m = 0; m < 300; ++m) assignment[static_cast<std::size_t>(m)] = m % 5;
  const MultiwayPartition start(std::move(assignment));
  KwayRefineOptions options;
  options.max_block_size = 120;
  const KwayRefineResult r = kway_refine(h, start, options);
  EXPECT_LE(r.cost_after, r.cost_before);
  EXPECT_GT(r.moves_made, 0);
  // Size bound honoured.
  for (std::int32_t b = 0; b < r.partition.num_blocks(); ++b)
    EXPECT_LE(r.partition.block_size(b), 120);
}

TEST(KwayRefine, NoMovesWhenAlreadyOptimal) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({2, 3});
  const Hypergraph h = b.build();
  const MultiwayPartition start({0, 0, 1, 1});
  const KwayRefineResult r = kway_refine(h, start);
  EXPECT_EQ(r.moves_made, 0);
  EXPECT_EQ(r.cost_after, 0);
}

TEST(KwayRefine, NeverEmptiesABlock) {
  // Block 1 holds a single weakly attached module; even though moving it
  // would improve the cost, emptying a block is forbidden.
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2});
  const Hypergraph h = b.build();
  const MultiwayPartition start({0, 0, 1});
  const KwayRefineResult r = kway_refine(h, start);
  EXPECT_EQ(r.partition.num_blocks(), 2);
  EXPECT_GE(r.partition.block_size(1), 1);
}

TEST(KwayRefine, RejectsBadInputs) {
  const Hypergraph h = circuit(50, "kway-bad");
  EXPECT_THROW(kway_refine(h, MultiwayPartition({0, 1})),
               std::invalid_argument);
  std::vector<std::int32_t> assignment(50, 0);
  assignment[0] = 1;
  KwayRefineOptions options;
  options.max_block_size = 10;  // block 0 already holds 49 modules
  EXPECT_THROW(kway_refine(h, MultiwayPartition(std::move(assignment)),
                           options),
               std::invalid_argument);
}

TEST(KwayRefine, ImprovesRecursiveBisectionOutput) {
  const Hypergraph h = circuit(400, "kway-improve");
  MultiwayOptions no_refine;
  no_refine.max_block_size = 60;
  no_refine.refine = false;
  const MultiwayResult raw = multiway_partition(h, no_refine);
  const KwayRefineResult refined = kway_refine(h, raw.partition);
  EXPECT_LE(refined.cost_after, raw.connectivity_cost);
  // And the integrated path produces the same-or-better cost.
  MultiwayOptions with_refine = no_refine;
  with_refine.refine = true;
  const MultiwayResult integrated = multiway_partition(h, with_refine);
  EXPECT_LE(integrated.connectivity_cost, raw.connectivity_cost);
}

}  // namespace
}  // namespace netpart
