#include "linalg/lanczos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/jacobi.hpp"
#include "linalg/vector_ops.hpp"

namespace netpart::linalg {
namespace {

/// Laplacian of the cycle C_n as triplets.
CsrMatrix cycle_laplacian(std::int32_t n) {
  std::vector<Triplet> t;
  for (std::int32_t i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    t.push_back({i, (i + 1) % n, -1.0});
    t.push_back({i, (i + n - 1) % n, -1.0});
  }
  return CsrMatrix::from_triplets(n, std::move(t));
}

std::vector<double> unit_ones(std::int32_t n) {
  return std::vector<double>(static_cast<std::size_t>(n),
                             1.0 / std::sqrt(static_cast<double>(n)));
}

TEST(Lanczos, DiagonalSmallest) {
  const CsrMatrix a =
      CsrMatrix::from_triplets(3, {{0, 0, 5.0}, {1, 1, -2.0}, {2, 2, 1.0}});
  const LanczosResult r = smallest_eigenpair(a, {});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, -2.0, 1e-8);
  EXPECT_NEAR(std::abs(r.eigenvector[1]), 1.0, 1e-6);
}

TEST(Lanczos, CycleLambda2WithDeflation) {
  // C_n Laplacian: lambda_2 = 2 - 2 cos(2 pi / n), multiplicity 2.
  const std::int32_t n = 24;
  const CsrMatrix q = cycle_laplacian(n);
  const std::vector<std::vector<double>> deflation{unit_ones(n)};
  const LanczosResult r = smallest_eigenpair(q, deflation);
  EXPECT_TRUE(r.converged);
  const double expected = 2.0 - 2.0 * std::cos(2.0 * M_PI / n);
  EXPECT_NEAR(r.eigenvalue, expected, 1e-7);
  // The eigenvector stays orthogonal to the deflated ones vector.
  EXPECT_NEAR(dot(r.eigenvector, deflation[0]), 0.0, 1e-8);
  EXPECT_NEAR(norm(r.eigenvector), 1.0, 1e-10);
}

TEST(Lanczos, MatchesJacobiOnRandomSymmetric) {
  // Deterministic "random" dense symmetric matrix, solved both ways.
  const std::size_t n = 20;
  std::vector<double> dense(n * n, 0.0);
  std::vector<double> noise(n * n);
  fill_random(noise, 4242);
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = noise[i * n + j];
      dense[i * n + j] = v;
      dense[j * n + i] = v;
      triplets.push_back({static_cast<std::int32_t>(i),
                          static_cast<std::int32_t>(j), v});
      if (i != j)
        triplets.push_back({static_cast<std::int32_t>(j),
                            static_cast<std::int32_t>(i), v});
    }
  const CsrMatrix sparse =
      CsrMatrix::from_triplets(static_cast<std::int32_t>(n), triplets);
  const DenseEigen oracle = jacobi_eigen(dense, n);
  const LanczosResult r = smallest_eigenpair(sparse, {});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, oracle.values[0], 1e-7);
}

TEST(Lanczos, ResidualIsSmallOnConvergence) {
  const CsrMatrix q = cycle_laplacian(30);
  const std::vector<std::vector<double>> deflation{unit_ones(30)};
  LanczosOptions options;
  options.tolerance = 1e-10;
  const LanczosResult r = smallest_eigenpair(q, deflation, options);
  EXPECT_TRUE(r.converged);
  // Verify the reported residual independently.
  std::vector<double> w(30);
  q.multiply(r.eigenvector, w);
  axpy(-r.eigenvalue, r.eigenvector, w);
  EXPECT_NEAR(norm(w), r.residual, 1e-12);
  EXPECT_LT(r.residual, 1e-8);
}

TEST(Lanczos, FullyDeflatedSpaceReturnsZeroVector) {
  const CsrMatrix a = CsrMatrix::from_triplets(1, {{0, 0, 3.0}});
  const std::vector<std::vector<double>> deflation{{1.0}};
  const LanczosResult r = smallest_eigenpair(a, deflation);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.eigenvector[0], 0.0);
}

TEST(Lanczos, DisconnectedLaplacianSecondZero) {
  // Two disjoint edges: Laplacian eigenvalues {0, 0, 2, 2}; after deflating
  // the global ones vector the smallest remaining eigenvalue is 0 (the
  // second kernel vector).
  const CsrMatrix q = CsrMatrix::from_triplets(
      4, {{0, 0, 1.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 1.0},
          {2, 2, 1.0}, {2, 3, -1.0}, {3, 2, -1.0}, {3, 3, 1.0}});
  const std::vector<std::vector<double>> deflation{unit_ones(4)};
  const LanczosResult r = smallest_eigenpair(q, deflation);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 0.0, 1e-8);
  // The kernel vector separates the components: constant per component
  // with opposite signs.
  EXPECT_NEAR(r.eigenvector[0], r.eigenvector[1], 1e-6);
  EXPECT_NEAR(r.eigenvector[2], r.eigenvector[3], 1e-6);
  EXPECT_LT(r.eigenvector[0] * r.eigenvector[2], 0.0);
}

TEST(Lanczos, RejectsBadInput) {
  const CsrMatrix empty = CsrMatrix::from_triplets(0, {});
  EXPECT_THROW(smallest_eigenpair(empty, {}), std::invalid_argument);
  const CsrMatrix a = CsrMatrix::from_triplets(2, {{0, 0, 1.0}});
  const std::vector<std::vector<double>> bad{{1.0}};  // wrong length
  EXPECT_THROW(smallest_eigenpair(a, bad), std::invalid_argument);
}

TEST(Lanczos, SeedChangesStartButNotAnswer) {
  const CsrMatrix q = cycle_laplacian(16);
  const std::vector<std::vector<double>> deflation{unit_ones(16)};
  LanczosOptions o1;
  o1.seed = 1;
  LanczosOptions o2;
  o2.seed = 999;
  const LanczosResult r1 = smallest_eigenpair(q, deflation, o1);
  const LanczosResult r2 = smallest_eigenpair(q, deflation, o2);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_NEAR(r1.eigenvalue, r2.eigenvalue, 1e-7);
}

}  // namespace
}  // namespace netpart::linalg
