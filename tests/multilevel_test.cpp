#include "cluster/multilevel.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

Hypergraph clustered_circuit(const char* name, std::int32_t n) {
  GeneratorConfig c;
  c.name = name;
  c.num_modules = n;
  c.num_nets = n + n / 10;
  c.leaf_max = 16;
  return generate_circuit(c).hypergraph;
}

TEST(Multilevel, ProducesConsistentResult) {
  const Hypergraph h = clustered_circuit("ml-basic", 600);
  const MultilevelResult r = multilevel_partition(h);
  EXPECT_TRUE(r.partition.is_proper());
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
  EXPECT_DOUBLE_EQ(r.ratio, ratio_cut(h, r.partition));
  EXPECT_GT(r.levels, 0);
  EXPECT_LE(r.coarsest_modules, 200 + 200);  // matching may stall early
}

TEST(Multilevel, CoarsensToRequestedSize) {
  const Hypergraph h = clustered_circuit("ml-coarsen", 800);
  MultilevelOptions options;
  options.coarsen_to = 100;
  const MultilevelResult r = multilevel_partition(h, options);
  // Heavy-edge matching halves per level, so the coarsest instance is
  // within a factor ~2 of the target.
  EXPECT_LE(r.coarsest_modules, 200);
  EXPECT_TRUE(r.partition.is_proper());
}

TEST(Multilevel, SmallInputSkipsCoarsening) {
  const Hypergraph h = clustered_circuit("ml-small", 80);
  MultilevelOptions options;
  options.coarsen_to = 200;
  const MultilevelResult r = multilevel_partition(h, options);
  EXPECT_EQ(r.levels, 0);
  EXPECT_EQ(r.coarsest_modules, h.num_modules());
  EXPECT_TRUE(r.partition.is_proper());
}

TEST(Multilevel, SeparatesDumbbell) {
  HypergraphBuilder b(12);
  for (std::int32_t i = 0; i < 6; ++i)
    for (std::int32_t j = i + 1; j < 6; ++j) {
      b.add_net({i, j});
      b.add_net({6 + i, 6 + j});
    }
  b.add_net({5, 6});
  const Hypergraph h = b.build();
  MultilevelOptions options;
  options.coarsen_to = 6;
  const MultilevelResult r = multilevel_partition(h, options);
  EXPECT_EQ(r.nets_cut, 1);
  EXPECT_EQ(r.partition.size(Side::kLeft), 6);
}

TEST(Multilevel, RefinementNeverHurtsVersusCoarseProjection) {
  // The multilevel result must be at least as good as solving the coarsest
  // level and projecting straight up without refinement.
  const Hypergraph h = clustered_circuit("ml-refine", 500);
  MultilevelOptions no_refine;
  no_refine.refine_passes = 0;
  MultilevelOptions with_refine;
  with_refine.refine_passes = 8;
  const MultilevelResult a = multilevel_partition(h, no_refine);
  const MultilevelResult b = multilevel_partition(h, with_refine);
  EXPECT_LE(b.ratio, a.ratio + 1e-12);
}

TEST(Multilevel, VcyclesNeverHurt) {
  const Hypergraph h = clustered_circuit("ml-vcycle", 500);
  MultilevelOptions plain;
  MultilevelOptions cycled;
  cycled.vcycles = 3;
  const MultilevelResult a = multilevel_partition(h, plain);
  const MultilevelResult b = multilevel_partition(h, cycled);
  EXPECT_LE(b.ratio, a.ratio + 1e-12);
  EXPECT_TRUE(b.partition.is_proper());
  EXPECT_EQ(b.nets_cut, net_cut(h, b.partition));
}

TEST(ConstrainedMatching, NeverMergesAcrossSides) {
  const Hypergraph h = clustered_circuit("ml-constrained", 200);
  Partition p(200);
  for (ModuleId m = 100; m < 200; ++m) p.assign(m, Side::kRight);
  const Clustering c = heavy_edge_matching_within(h, p);
  for (ModuleId m = 0; m < 200; ++m)
    for (ModuleId other = 0; other < 200; ++other)
      if (other != m && c.cluster_of(m) == c.cluster_of(other))
        ASSERT_EQ(p.side(m), p.side(other));
  EXPECT_THROW(heavy_edge_matching_within(h, Partition(5)),
               std::invalid_argument);
}

TEST(Multilevel, RejectsBadOptions) {
  const Hypergraph h = clustered_circuit("ml-bad", 50);
  MultilevelOptions options;
  options.coarsen_to = 1;
  EXPECT_THROW(multilevel_partition(h, options), std::invalid_argument);
}

TEST(Multilevel, TrivialInstanceSafe) {
  HypergraphBuilder b(1);
  b.add_net({0});
  const MultilevelResult r = multilevel_partition(b.build());
  EXPECT_EQ(r.nets_cut, 0);
}

}  // namespace
}  // namespace netpart
