#include "cluster/multilevel.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

Hypergraph clustered_circuit(const char* name, std::int32_t n) {
  GeneratorConfig c;
  c.name = name;
  c.num_modules = n;
  c.num_nets = n + n / 10;
  c.leaf_max = 16;
  return generate_circuit(c).hypergraph;
}

TEST(Multilevel, ProducesConsistentResult) {
  const Hypergraph h = clustered_circuit("ml-basic", 600);
  MultilevelOptions options;
  options.coarsen_to = 200;
  options.direct_pair_budget = 0;  // force a hierarchy despite the small input
  const MultilevelResult r = multilevel_partition(h, options);
  EXPECT_TRUE(r.partition.is_proper());
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
  EXPECT_DOUBLE_EQ(r.ratio, ratio_cut(h, r.partition));
  EXPECT_GT(r.levels, 0);
  EXPECT_LE(r.coarsest_modules, 200 + 200);  // clustering may stall early
}

TEST(Multilevel, CoarsensToRequestedSize) {
  const Hypergraph h = clustered_circuit("ml-coarsen", 800);
  MultilevelOptions options;
  options.coarsen_to = 100;
  options.direct_pair_budget = 0;
  const MultilevelResult r = multilevel_partition(h, options);
  // Heavy-edge clustering at least halves per level, so the coarsest
  // instance is within a factor ~2 of the target.
  EXPECT_LE(r.coarsest_modules, 200);
  EXPECT_TRUE(r.partition.is_proper());
}

TEST(Multilevel, SmallInputSkipsCoarsening) {
  const Hypergraph h = clustered_circuit("ml-small", 80);
  MultilevelOptions options;
  options.coarsen_to = 200;
  const MultilevelResult r = multilevel_partition(h, options);
  EXPECT_EQ(r.levels, 0);
  EXPECT_EQ(r.coarsest_modules, h.num_modules());
  EXPECT_TRUE(r.partition.is_proper());
}

TEST(Multilevel, InputWithinPairBudgetIsSolvedDirectly) {
  // 600 modules of sparse netlist sit well inside the direct-solve pair
  // budget, so the default options build no hierarchy — contracting an
  // affordable instance only destroys structure the solver would have used.
  const Hypergraph h = clustered_circuit("ml-direct", 600);
  std::int64_t pairs = 0;
  for (ModuleId m = 0; m < h.num_modules(); ++m) {
    const auto d = static_cast<std::int64_t>(h.nets_of(m).size());
    pairs += d * (d - 1) / 2;
  }
  ASSERT_LE(pairs, MultilevelOptions{}.direct_pair_budget);
  const MultilevelResult r = multilevel_partition(h);
  EXPECT_EQ(r.levels, 0);
  EXPECT_EQ(r.coarsest_modules, h.num_modules());
  EXPECT_TRUE(r.partition.is_proper());
}

TEST(Multilevel, LevelStatsDescribeTheHierarchy) {
  const Hypergraph h = clustered_circuit("ml-stats", 900);
  MultilevelOptions options;
  options.coarsen_to = 50;
  options.direct_pair_budget = 0;
  const MultilevelResult r = multilevel_partition(h, options);
  ASSERT_GT(r.levels, 1);
  ASSERT_EQ(static_cast<std::int32_t>(r.level_stats.size()), r.levels + 1);
  EXPECT_EQ(r.level_stats.front().modules, h.num_modules());
  EXPECT_EQ(r.level_stats.front().nets, h.num_nets());
  EXPECT_EQ(r.level_stats.front().pins, h.num_pins());
  EXPECT_EQ(r.level_stats.back().modules, r.coarsest_modules);
  for (std::size_t i = 1; i < r.level_stats.size(); ++i) {
    EXPECT_LT(r.level_stats[i].modules, r.level_stats[i - 1].modules);
    EXPECT_GT(r.level_stats[i].coarsen_ratio, 0.0);
    EXPECT_LT(r.level_stats[i].coarsen_ratio, 1.0);
    EXPECT_DOUBLE_EQ(r.level_stats[i].coarsen_ratio,
                     static_cast<double>(r.level_stats[i].modules) /
                         static_cast<double>(r.level_stats[i - 1].modules));
    // Refinement is improvement-guarded at every level.
    EXPECT_GE(r.level_stats[i].refine_gain, 0.0);
  }
  EXPECT_GE(r.level_stats.front().refine_gain, 0.0);
}

TEST(Multilevel, FixedSeedRunsAreBitIdentical) {
  // Two full runs with extra V-cycles on the same instance must agree on
  // every module assignment, not just the ratio: the whole engine is
  // deterministic by construction.
  const Hypergraph h = clustered_circuit("ml-deterministic", 700);
  MultilevelOptions options;
  options.coarsen_to = 64;
  options.direct_pair_budget = 0;
  options.vcycles = 2;
  const MultilevelResult a = multilevel_partition(h, options);
  const MultilevelResult b = multilevel_partition(h, options);
  ASSERT_EQ(a.partition.num_modules(), b.partition.num_modules());
  for (ModuleId m = 0; m < h.num_modules(); ++m)
    ASSERT_EQ(a.partition.side(m), b.partition.side(m)) << "module " << m;
  EXPECT_EQ(a.nets_cut, b.nets_cut);
  EXPECT_DOUBLE_EQ(a.ratio, b.ratio);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.vcycles_run, b.vcycles_run);
  for (ModuleId m = 0; m < a.coarsest_partition.num_modules(); ++m)
    ASSERT_EQ(a.coarsest_partition.side(m), b.coarsest_partition.side(m));
}

TEST(Multilevel, SeparatesDumbbell) {
  HypergraphBuilder b(12);
  for (std::int32_t i = 0; i < 6; ++i)
    for (std::int32_t j = i + 1; j < 6; ++j) {
      b.add_net({i, j});
      b.add_net({6 + i, 6 + j});
    }
  b.add_net({5, 6});
  const Hypergraph h = b.build();
  MultilevelOptions options;
  options.coarsen_to = 6;
  options.direct_pair_budget = 0;
  const MultilevelResult r = multilevel_partition(h, options);
  EXPECT_EQ(r.nets_cut, 1);
  EXPECT_EQ(r.partition.size(Side::kLeft), 6);
}

TEST(Multilevel, RefinementNeverHurtsVersusCoarseProjection) {
  // The multilevel result must be at least as good as solving the coarsest
  // level and projecting straight up without refinement.
  const Hypergraph h = clustered_circuit("ml-refine", 500);
  MultilevelOptions no_refine;
  no_refine.refine_passes = 0;
  no_refine.direct_pair_budget = 0;
  MultilevelOptions with_refine;
  with_refine.refine_passes = 8;
  with_refine.direct_pair_budget = 0;
  const MultilevelResult a = multilevel_partition(h, no_refine);
  const MultilevelResult b = multilevel_partition(h, with_refine);
  EXPECT_LE(b.ratio, a.ratio + 1e-12);
}

TEST(Multilevel, VcyclesNeverHurt) {
  const Hypergraph h = clustered_circuit("ml-vcycle", 500);
  MultilevelOptions plain;
  plain.direct_pair_budget = 0;
  MultilevelOptions cycled;
  cycled.direct_pair_budget = 0;
  cycled.vcycles = 3;
  const MultilevelResult a = multilevel_partition(h, plain);
  const MultilevelResult b = multilevel_partition(h, cycled);
  EXPECT_LE(b.ratio, a.ratio + 1e-12);
  EXPECT_TRUE(b.partition.is_proper());
  EXPECT_EQ(b.nets_cut, net_cut(h, b.partition));
}

TEST(ConstrainedMatching, NeverMergesAcrossSides) {
  const Hypergraph h = clustered_circuit("ml-constrained", 200);
  Partition p(200);
  for (ModuleId m = 100; m < 200; ++m) p.assign(m, Side::kRight);
  const Clustering c = heavy_edge_matching_within(h, p);
  for (ModuleId m = 0; m < 200; ++m)
    for (ModuleId other = 0; other < 200; ++other)
      if (other != m && c.cluster_of(m) == c.cluster_of(other))
        ASSERT_EQ(p.side(m), p.side(other));
  EXPECT_THROW(heavy_edge_matching_within(h, Partition(5)),
               std::invalid_argument);
}

TEST(Multilevel, RejectsBadOptions) {
  const Hypergraph h = clustered_circuit("ml-bad", 50);
  MultilevelOptions options;
  options.coarsen_to = 1;
  EXPECT_THROW(multilevel_partition(h, options), std::invalid_argument);
}

TEST(Multilevel, TrivialInstanceSafe) {
  HypergraphBuilder b(1);
  b.add_net({0});
  const MultilevelResult r = multilevel_partition(b.build());
  EXPECT_EQ(r.nets_cut, 0);
}

}  // namespace
}  // namespace netpart
