#include "core/multiway.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"

namespace netpart {
namespace {

Hypergraph circuit(std::int32_t n, const char* name) {
  GeneratorConfig c;
  c.name = name;
  c.num_modules = n;
  c.num_nets = n + n / 10;
  c.leaf_max = 16;
  return generate_circuit(c).hypergraph;
}

TEST(MultiwayPartition, ConstructionAndAccessors) {
  const MultiwayPartition p({0, 1, 0, 2, 1});
  EXPECT_EQ(p.num_modules(), 5);
  EXPECT_EQ(p.num_blocks(), 3);
  EXPECT_EQ(p.block_of(3), 2);
  EXPECT_EQ(p.block_size(0), 2);
  EXPECT_EQ(p.block_size(2), 1);
}

TEST(MultiwayPartition, RejectsBadIds) {
  EXPECT_THROW(MultiwayPartition({0, 2}), std::invalid_argument);
  EXPECT_THROW(MultiwayPartition({-1}), std::invalid_argument);
}

TEST(MultiwayMetrics, HandComputed) {
  HypergraphBuilder b(6);
  b.add_net({0, 1});     // inside block 0
  b.add_net({2, 3});     // inside block 1
  b.add_net({1, 2});     // spans blocks 0,1
  b.add_net({0, 2, 4});  // spans blocks 0,1,2
  const Hypergraph h = b.build();
  const MultiwayPartition p({0, 0, 1, 1, 2, 2});
  EXPECT_EQ(spanning_net_count(h, p), 2);
  EXPECT_EQ(connectivity_minus_one(h, p), 1 + 2);
}

TEST(Multiway, BlocksRespectSizeBudget) {
  const Hypergraph h = circuit(400, "mw-budget");
  MultiwayOptions options;
  options.max_block_size = 60;
  const MultiwayResult r = multiway_partition(h, options);
  for (std::int32_t b = 0; b < r.partition.num_blocks(); ++b)
    EXPECT_LE(r.partition.block_size(b), 60) << "block " << b;
  EXPECT_GE(r.partition.num_blocks(), 400 / 60);
  EXPECT_EQ(r.nets_spanning, spanning_net_count(h, r.partition));
  EXPECT_EQ(r.connectivity_cost, connectivity_minus_one(h, r.partition));
}

TEST(Multiway, EveryModuleAssigned) {
  const Hypergraph h = circuit(200, "mw-coverage");
  MultiwayOptions options;
  options.max_block_size = 50;
  const MultiwayResult r = multiway_partition(h, options);
  std::int32_t total = 0;
  for (std::int32_t b = 0; b < r.partition.num_blocks(); ++b)
    total += r.partition.block_size(b);
  EXPECT_EQ(total, h.num_modules());
}

TEST(Multiway, MaxBlocksCapHonoured) {
  const Hypergraph h = circuit(300, "mw-cap");
  MultiwayOptions options;
  options.max_block_size = 10;  // would need ~30 blocks...
  options.max_blocks = 4;       // ...but we cap at 4
  const MultiwayResult r = multiway_partition(h, options);
  EXPECT_LE(r.partition.num_blocks(), 4);
}

TEST(Multiway, LargeBudgetMeansNoSplit) {
  const Hypergraph h = circuit(100, "mw-nosplit");
  MultiwayOptions options;
  options.max_block_size = 200;
  const MultiwayResult r = multiway_partition(h, options);
  EXPECT_EQ(r.partition.num_blocks(), 1);
  EXPECT_EQ(r.splits_performed, 0);
  EXPECT_EQ(r.nets_spanning, 0);
  EXPECT_EQ(r.connectivity_cost, 0);
}

TEST(Multiway, ConnectivityAtLeastSpanning) {
  // connectivity-1 counts each spanning net at least once.
  const Hypergraph h = circuit(250, "mw-metrics");
  MultiwayOptions options;
  options.max_block_size = 40;
  const MultiwayResult r = multiway_partition(h, options);
  EXPECT_GE(r.connectivity_cost, r.nets_spanning);
}

TEST(Multiway, RejectsBadBudget) {
  const Hypergraph h = circuit(50, "mw-bad");
  MultiwayOptions options;
  options.max_block_size = 1;
  EXPECT_THROW(multiway_partition(h, options), std::invalid_argument);
}

TEST(Multiway, FmSplitterAlsoWorks) {
  const Hypergraph h = circuit(150, "mw-fm");
  MultiwayOptions options;
  options.max_block_size = 40;
  options.bipartitioner.algorithm = Algorithm::kRatioCutFm;
  options.bipartitioner.fm.num_starts = 2;
  const MultiwayResult r = multiway_partition(h, options);
  for (std::int32_t b = 0; b < r.partition.num_blocks(); ++b)
    EXPECT_LE(r.partition.block_size(b), 40);
}

}  // namespace
}  // namespace netpart
