#include "graph/net_models.hpp"

#include <gtest/gtest.h>

#include "spectral/eig1.hpp"

namespace netpart {
namespace {

Hypergraph one_net(std::int32_t k) {
  HypergraphBuilder b(k);
  std::vector<ModuleId> pins;
  for (std::int32_t i = 0; i < k; ++i) pins.push_back(i);
  b.add_net(pins);
  return b.build();
}

TEST(NetModels, ParseRoundTrip) {
  EXPECT_EQ(parse_net_model("clique"), NetModel::kClique);
  EXPECT_EQ(parse_net_model("path"), NetModel::kPath);
  EXPECT_EQ(parse_net_model("star"), NetModel::kStar);
  EXPECT_EQ(parse_net_model("cycle"), NetModel::kCycle);
  EXPECT_THROW(parse_net_model("mst"), std::invalid_argument);
  EXPECT_STREQ(to_string(NetModel::kPath), "path");
}

TEST(NetModels, TwoPinNetIdenticalUnderAllModels) {
  const Hypergraph h = one_net(2);
  for (const NetModel model : {NetModel::kClique, NetModel::kPath,
                               NetModel::kStar, NetModel::kCycle}) {
    const WeightedGraph g = expand_net_model(h, model);
    EXPECT_EQ(g.num_edges(), 1) << to_string(model);
    EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0) << to_string(model);
  }
}

TEST(NetModels, PathTopology) {
  const WeightedGraph g = expand_net_model(one_net(5), NetModel::kPath);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_GT(g.edge_weight(0, 1), 0.0);
  EXPECT_GT(g.edge_weight(3, 4), 0.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 0.0);
}

TEST(NetModels, StarTopology) {
  const WeightedGraph g = expand_net_model(one_net(5), NetModel::kStar);
  EXPECT_EQ(g.num_edges(), 4);
  for (std::int32_t i = 1; i < 5; ++i)
    EXPECT_GT(g.edge_weight(0, i), 0.0) << i;
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 0.0);
}

TEST(NetModels, CycleTopology) {
  const WeightedGraph g = expand_net_model(one_net(5), NetModel::kCycle);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_GT(g.edge_weight(0, 4), 0.0);  // the closing edge
  EXPECT_GT(g.edge_weight(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 0.0);
}

TEST(NetModels, TotalWeightNormalizedToHalfK) {
  // Every model gives a k-pin net total edge weight k/2, so cut values are
  // comparable across models.
  for (const NetModel model : {NetModel::kClique, NetModel::kPath,
                               NetModel::kStar, NetModel::kCycle}) {
    for (const std::int32_t k : {2, 3, 5, 9}) {
      const WeightedGraph g = expand_net_model(one_net(k), model);
      double total = 0.0;
      for (std::int32_t v = 0; v < k; ++v) total += g.degree_weight(v);
      EXPECT_NEAR(total / 2.0, static_cast<double>(k) / 2.0, 1e-12)
          << to_string(model) << " k=" << k;
    }
  }
}

TEST(NetModels, SinglePinNetIgnored) {
  HypergraphBuilder b(2);
  b.add_net({0});
  for (const NetModel model : {NetModel::kPath, NetModel::kStar,
                               NetModel::kCycle})
    EXPECT_EQ(expand_net_model(b.build(), model).num_edges(), 0);
}

TEST(NetModels, Eig1RunsUnderEveryModel) {
  // Dumbbell of 2-pin nets: identical under all models, so every variant
  // must find the 1-net cut.
  HypergraphBuilder b(8);
  for (std::int32_t i = 0; i < 4; ++i)
    for (std::int32_t j = i + 1; j < 4; ++j) {
      b.add_net({i, j});
      b.add_net({4 + i, 4 + j});
    }
  b.add_net({3, 4});
  const Hypergraph h = b.build();
  for (const NetModel model : {NetModel::kClique, NetModel::kPath,
                               NetModel::kStar, NetModel::kCycle}) {
    const Eig1Result r = eig1_partition_with_model(h, model);
    EXPECT_EQ(r.sweep.nets_cut, 1) << to_string(model);
  }
}

}  // namespace
}  // namespace netpart
