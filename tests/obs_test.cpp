#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/profiler.hpp"
#include "obs/prom_export.hpp"
#include "obs/rolling.hpp"
#include "obs/trace_context.hpp"
#include "obs/trace_export.hpp"

namespace netpart::obs {
namespace {

/// RAII guard: every test runs against a clean, enabled registry and leaves
/// it disabled and empty for the next one (the registry is process-wide).
struct RegistryFixture : ::testing::Test {
  void SetUp() override {
    MetricsRegistry::instance().reset();
    MetricsRegistry::instance().set_enabled(true);
  }
  void TearDown() override {
    MetricsRegistry::instance().set_enabled(false);
    MetricsRegistry::instance().reset();
  }
};

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to round-trip what to_json() emits.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::out_of_range("missing key: " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      const JsonValue key = string();
      skip_ws();
      expect(':');
      v.object.emplace(key.string, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        v.string += c;
        continue;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'u': {
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          v.string += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          break;
        }
        default: throw std::runtime_error("bad escape");
      }
    }
    ++pos_;
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (text_.substr(pos_, 4) != "null") throw std::runtime_error("bad null");
    pos_ += 4;
    return {};
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad number");
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, NestedSpansFormATree) {
  MetricsRegistry& r = MetricsRegistry::instance();
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner");
      ScopedSpan innermost("innermost");
      (void)innermost;
    }
    ScopedSpan sibling("sibling");
    (void)sibling;
  }
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  const SpanNode& outer = snap.spans.front();
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1);
  EXPECT_GE(outer.wall_ms, 0.0);
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[1].name, "sibling");
  ASSERT_EQ(outer.children[0].children.size(), 1u);
  EXPECT_EQ(outer.children[0].children[0].name, "innermost");
  // A parent's accumulated time includes its children's.
  EXPECT_GE(outer.wall_ms, outer.children[0].wall_ms);
}

TEST_F(RegistryFixture, SameNameSiblingSpansMerge) {
  MetricsRegistry& r = MetricsRegistry::instance();
  {
    ScopedSpan sweep("sweep");
    for (int i = 0; i < 5; ++i) {
      ScopedSpan split("split");
      (void)split;
    }
  }
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  ASSERT_EQ(snap.spans[0].children.size(), 1u);
  EXPECT_EQ(snap.spans[0].children[0].name, "split");
  EXPECT_EQ(snap.spans[0].children[0].count, 5);
}

TEST_F(RegistryFixture, SnapshotCreditsOpenSpans) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.begin_span("still-open");
  const MetricsSnapshot snap = r.snapshot();
  r.end_span();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "still-open");
  EXPECT_EQ(snap.spans[0].count, 1);
  EXPECT_GE(snap.spans[0].wall_ms, 0.0);
  // The registry itself still has the span open: closing it must not
  // double-count (count stays 1 in the final snapshot).
  EXPECT_EQ(r.snapshot().spans[0].count, 1);
}

TEST_F(RegistryFixture, DisableMidScopeKeepsStackBalanced) {
  MetricsRegistry& r = MetricsRegistry::instance();
  {
    ScopedSpan outer("outer");
    r.set_enabled(false);
  }  // destructor must still close "outer"
  r.set_enabled(true);
  {
    ScopedSpan top("top");
    (void)top;
  }
  const MetricsSnapshot snap = r.snapshot();
  // "top" is a root, not a child of a dangling "outer".
  ASSERT_EQ(snap.spans.size(), 2u);
  EXPECT_EQ(snap.spans[0].name, "outer");
  EXPECT_TRUE(snap.spans[0].children.empty());
  EXPECT_EQ(snap.spans[1].name, "top");
}

TEST_F(RegistryFixture, EndSpanWithoutOpenSpanIsNoOp) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.end_span();  // must not crash or underflow
  EXPECT_TRUE(r.snapshot().spans.empty());
}

// ---------------------------------------------------------------------------
// Counters, gauges, histograms
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, CountersAccumulate) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.add_counter("a.hits", 1);
  r.add_counter("a.hits", 41);
  r.add_counter("b.misses", 7);
  EXPECT_EQ(r.counter("a.hits"), 42);
  EXPECT_EQ(r.counter("b.misses"), 7);
  EXPECT_EQ(r.counter("never.touched"), 0);
  const MetricsSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.counter("a.hits"), 42);
  ASSERT_EQ(snap.counters.size(), 2u);
  // Snapshot entries are sorted by name.
  EXPECT_EQ(snap.counters[0].name, "a.hits");
  EXPECT_EQ(snap.counters[1].name, "b.misses");
}

TEST_F(RegistryFixture, GaugesOverwrite) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_gauge("lambda2", 0.25);
  r.set_gauge("lambda2", 0.5);
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.5);
}

TEST_F(RegistryFixture, HistogramBucketsArePowersOfTwo) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.record_histogram("h", 0.5);   // bucket 0: < 1
  r.record_histogram("h", 1.0);   // bucket 1: [1, 2)
  r.record_histogram("h", 3.0);   // bucket 2: [2, 4)
  r.record_histogram("h", 3.9);   // bucket 2
  r.record_histogram("h", 1e12);  // clamped to the open-ended last bucket
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramEntry& h = snap.histograms[0];
  EXPECT_EQ(h.count, 5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1e12);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 3.0 + 3.9 + 1e12);
  EXPECT_NEAR(h.mean(), h.sum / 5.0, 1e-9);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 1);
  EXPECT_EQ(h.buckets[2], 2);
  EXPECT_EQ(h.buckets[kHistogramBuckets - 1], 1);
}

TEST_F(RegistryFixture, DisabledRegistryRecordsNothing) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_enabled(false);
  r.add_counter("c", 1);
  r.set_gauge("g", 1.0);
  r.record_histogram("h", 1.0);
  r.begin_span("s");
  r.end_span();
  NETPART_COUNTER_ADD("macro.c", 1);
  NETPART_GAUGE_SET("macro.g", 1.0);
  NETPART_HISTOGRAM_RECORD("macro.h", 1.0);
  { NETPART_SPAN("macro.s"); }
  r.set_enabled(true);
  EXPECT_TRUE(r.snapshot().empty());
}

TEST_F(RegistryFixture, ResetDropsEverything) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_run_label("before");
  r.add_counter("c", 1);
  r.begin_span("open");
  r.reset();
  r.end_span();  // the abandoned span must not resurface
  const MetricsSnapshot snap = r.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_TRUE(snap.run_label.empty());
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, MacrosRecordWhenCompiledInAndEnabled) {
  MetricsRegistry& r = MetricsRegistry::instance();
  {
    NETPART_SPAN("macro-span");
    NETPART_COUNTER_ADD("macro.counter", 3);
    NETPART_GAUGE_SET("macro.gauge", 2.5);
    NETPART_HISTOGRAM_RECORD("macro.hist", 4.0);
  }
  const MetricsSnapshot snap = r.snapshot();
#if NETPART_OBS_ENABLED
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "macro-span");
  EXPECT_EQ(snap.counter("macro.counter"), 3);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
#else
  // Compiled out: the macros above must have expanded to nothing even
  // though the registry is enabled.
  EXPECT_TRUE(snap.empty());
#endif
}

#if !NETPART_OBS_ENABLED
TEST_F(RegistryFixture, CompiledOutMacrosDoNotEvaluateArguments) {
  int evaluations = 0;
  const auto touch = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  (void)touch;  // only ever referenced inside the discarded macro arguments
  NETPART_COUNTER_ADD("x", touch());
  NETPART_GAUGE_SET("x", static_cast<double>(touch()));
  NETPART_HISTOGRAM_RECORD("x", static_cast<double>(touch()));
  EXPECT_EQ(evaluations, 0);
}
#endif

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, JsonRoundTrip) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_run_label("bm1/igmatch");
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
    (void)inner;
  }
  r.add_counter("lanczos.iterations", 160);
  r.set_gauge("fiedler.lambda2", 0.0778551);
  r.record_histogram("repair.cost", 3.0);
  r.record_histogram("repair.cost", 17.0);
  const MetricsSnapshot snap = r.snapshot();

  const JsonValue root = JsonParser(snap.to_json()).parse();
  EXPECT_EQ(root.at("label").string, "bm1/igmatch");

  const JsonValue& spans = root.at("spans");
  ASSERT_EQ(spans.array.size(), 1u);
  EXPECT_EQ(spans.array[0].at("name").string, "outer");
  EXPECT_EQ(spans.array[0].at("count").number, 1.0);
  ASSERT_EQ(spans.array[0].at("children").array.size(), 1u);
  EXPECT_EQ(spans.array[0].at("children").array[0].at("name").string,
            "inner");

  EXPECT_EQ(root.at("counters").at("lanczos.iterations").number, 160.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("fiedler.lambda2").number, 0.0778551);

  const JsonValue& hist = root.at("histograms").at("repair.cost");
  EXPECT_EQ(hist.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 20.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 17.0);
  // 3 -> bucket 2, 17 -> bucket 5; trailing zero buckets are elided.
  const std::vector<JsonValue>& buckets = hist.at("buckets").array;
  ASSERT_EQ(buckets.size(), 6u);
  EXPECT_EQ(buckets[2].number, 1.0);
  EXPECT_EQ(buckets[5].number, 1.0);
}

TEST_F(RegistryFixture, JsonEscapesControlCharactersAndQuotes) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_run_label("a\"b\\c\nd\te\x01f");
  r.add_counter("weird \"name\"", 1);
  const std::string json = r.snapshot().to_json();
  const JsonValue root = JsonParser(json).parse();
  EXPECT_EQ(root.at("label").string, "a\"b\\c\nd\te\x01f");
  EXPECT_EQ(root.at("counters").at("weird \"name\"").number, 1.0);
}

TEST(JsonEscape, Direct) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("q\"q"), "q\\\"q");
  EXPECT_EQ(json_escape("b\\b"), "b\\\\b");
  EXPECT_EQ(json_escape("n\nn"), "n\\nn");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST_F(RegistryFixture, EmptySnapshotSerializesToValidJson) {
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  const JsonValue root = JsonParser(snap.to_json()).parse();
  EXPECT_TRUE(root.at("spans").array.empty());
  EXPECT_TRUE(root.at("counters").object.empty());
  EXPECT_TRUE(root.at("gauges").object.empty());
  EXPECT_TRUE(root.at("histograms").object.empty());
}

TEST_F(RegistryFixture, NonFiniteGaugesSerializeAsNull) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_gauge("bad", std::numeric_limits<double>::infinity());
  const JsonValue root = JsonParser(r.snapshot().to_json()).parse();
  EXPECT_EQ(root.at("gauges").at("bad").kind, JsonValue::Kind::kNull);
}

// ---------------------------------------------------------------------------
// Quantile estimation
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, PointMassIsExact) {
  // One repeated value: min == max clamp the interpolation to the value
  // itself, so every quantile is exact regardless of its bucket.
  HistogramEntry h;
  for (int i = 0; i < 100; ++i) histogram_record(h, 5.0);
  for (const double q : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 5.0) << "q=" << q;
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  const HistogramEntry h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramQuantile, UniformDistributionWithinOneBucketOfTruth) {
  // Uniform over 1..1000: the log2 estimate may be off by at most one
  // bucket, i.e. a factor of two of the true sample quantile.
  HistogramEntry h;
  for (int v = 1; v <= 1000; ++v) histogram_record(h, static_cast<double>(v));
  for (const double q : {0.5, 0.9, 0.99}) {
    const double truth = q * 1000.0;
    const double estimate = h.quantile(q);
    EXPECT_GE(estimate, truth / 2.0) << "q=" << q;
    EXPECT_LE(estimate, truth * 2.0) << "q=" << q;
  }
  // Monotone in q, clamped to the observed range at the ends.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_GE(h.quantile(0.0), h.min);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max);
}

TEST(HistogramQuantile, ClampsOutOfRangeArguments) {
  HistogramEntry h;
  histogram_record(h, 3.0);
  histogram_record(h, 9.0);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

// ---------------------------------------------------------------------------
// Rolling histograms
// ---------------------------------------------------------------------------

TEST(RollingHistogram, WindowDropsOldEpochs) {
  // 1000 ms window in 4 epochs of 250 ms, driven by an explicit clock.
  RollingHistogram rh(RollingConfig{1000, 4});
  rh.record(1.0, 0);
  rh.record(2.0, 300);
  EXPECT_EQ(rh.merged(300).count, 2);
  // At t=1100 the epoch holding t=0 has aged out; t=300 is still inside.
  EXPECT_EQ(rh.merged(1100).count, 1);
  EXPECT_DOUBLE_EQ(rh.merged(1100).sum, 2.0);
  // Far future: everything aged out.
  EXPECT_EQ(rh.merged(5000).count, 0);
}

TEST(RollingHistogram, RecordRecyclesStaleSlots) {
  RollingHistogram rh(RollingConfig{1000, 4});
  rh.record(1.0, 0);
  // t=1001 maps to epoch 4 — the same ring slot as epoch 0; the stale
  // contents must be discarded, not merged.
  rh.record(7.0, 1001);
  const HistogramEntry m = rh.merged(1001);
  EXPECT_EQ(m.count, 1);
  EXPECT_DOUBLE_EQ(m.sum, 7.0);
}

TEST(RollingHistogram, MergedTracksMinMaxAcrossEpochs) {
  RollingHistogram rh(RollingConfig{1000, 4});
  rh.record(10.0, 0);
  rh.record(3.0, 300);
  rh.record(90.0, 600);
  const HistogramEntry m = rh.merged(600);
  EXPECT_EQ(m.count, 3);
  EXPECT_DOUBLE_EQ(m.min, 3.0);
  EXPECT_DOUBLE_EQ(m.max, 90.0);
}

TEST_F(RegistryFixture, RecordRollingAppearsInSnapshot) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.configure_rolling(60000, 6);
  r.record_rolling("req.latency", 12.0);
  r.record_rolling("req.latency", 48.0);
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.rolling.size(), 1u);
  EXPECT_EQ(snap.rolling[0].name, "req.latency");
  EXPECT_EQ(snap.rolling[0].window_ms, 60000);
  EXPECT_EQ(snap.rolling[0].window.count, 2);
  const JsonValue root = JsonParser(snap.to_json()).parse();
  const JsonValue& entry = root.at("rolling").at("req.latency");
  EXPECT_EQ(entry.at("window").at("count").number, 2.0);
  EXPECT_GT(entry.at("p99").number, 0.0);
}

TEST_F(RegistryFixture, RollingSpansRecordPhaseLatency) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_rolling_spans(true);
  { ScopedSpan span("solve"); }
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.rolling.size(), 1u);
  EXPECT_EQ(snap.rolling[0].name, "phase.solve");
  EXPECT_EQ(snap.rolling[0].window.count, 1);
  r.set_rolling_spans(false);
}

TEST_F(RegistryFixture, RollingSpansOffByDefault) {
  { ScopedSpan span("solve"); }
  EXPECT_TRUE(MetricsRegistry::instance().snapshot().rolling.empty());
}

// ---------------------------------------------------------------------------
// Deterministic exports
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, RepeatedExportsAreByteIdentical) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_run_label("determinism");
  r.add_counter("z.last", 3);
  r.add_counter("a.first", 1);
  r.set_gauge("mid.gauge", 2.5);
  r.record_histogram("hist", 7.0);
  r.record_rolling("roll", 4.0);
  { ScopedSpan outer("outer"); ScopedSpan inner("inner"); }

  const MetricsSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.to_json(), snap.to_json());
  EXPECT_EQ(to_prometheus(snap), to_prometheus(snap));
  EXPECT_EQ(to_chrome_trace(snap), to_chrome_trace(snap));
  // A second snapshot of the unchanged registry exports identically too.
  const MetricsSnapshot again = r.snapshot();
  EXPECT_EQ(snap.to_json(), again.to_json());
  EXPECT_EQ(to_prometheus(snap), to_prometheus(again));
  // Sorted sections: the counter added last sorts first.
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "z.last");
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(PromExport, SanitizeAndEscape) {
  EXPECT_EQ(prom_sanitize("fm.passes"), "fm_passes");
  EXPECT_EQ(prom_sanitize("ok_name:sub"), "ok_name:sub");
  EXPECT_EQ(prom_sanitize("1bad"), "_1bad");
  EXPECT_EQ(prom_sanitize(""), "_");
  EXPECT_EQ(prom_sanitize("sp ace\n"), "sp_ace_");
  EXPECT_EQ(prom_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST_F(RegistryFixture, PrometheusCountersAndGauges) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.add_counter("fm.passes", 4);
  r.set_gauge("queue.depth", 2.0);
  const std::string body = to_prometheus(r.snapshot());
  EXPECT_NE(body.find("# TYPE netpart_fm_passes_total counter\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpart_fm_passes_total 4\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE netpart_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpart_queue_depth 2\n"), std::string::npos);
}

TEST_F(RegistryFixture, PrometheusHistogramIsCumulative) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.record_histogram("cost", 0.5);  // bucket le="1"
  r.record_histogram("cost", 3.0);  // bucket le="4"
  r.record_histogram("cost", 3.5);  // bucket le="4"
  const std::string body = to_prometheus(r.snapshot());
  EXPECT_NE(body.find("netpart_cost_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpart_cost_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpart_cost_bucket{le=\"4\"} 3\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpart_cost_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpart_cost_count 3\n"), std::string::npos);
}

TEST_F(RegistryFixture, PrometheusRollingBecomesSummary) {
  MetricsRegistry& r = MetricsRegistry::instance();
  for (int i = 0; i < 10; ++i) r.record_rolling("lat", 8.0);
  const std::string body = to_prometheus(r.snapshot());
  EXPECT_NE(body.find("# TYPE netpart_lat summary\n"), std::string::npos);
  EXPECT_NE(body.find("netpart_lat{quantile=\"0.5\"} 8\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpart_lat{quantile=\"0.99\"} 8\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpart_lat_count 10\n"), std::string::npos);
}

TEST_F(RegistryFixture, PrometheusNameCollisionFirstWins) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.add_counter("a.b", 1);
  r.add_counter("a_b", 2);  // sanitizes to the same family name
  const std::string body = to_prometheus(r.snapshot());
  std::size_t type_lines = 0;
  for (std::size_t at = body.find("# TYPE netpart_a_b_total");
       at != std::string::npos;
       at = body.find("# TYPE netpart_a_b_total", at + 1))
    ++type_lines;
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(body.find("netpart_a_b_total 1\n"), std::string::npos);
  EXPECT_EQ(body.find("netpart_a_b_total 2\n"), std::string::npos);
}

TEST_F(RegistryFixture, PrometheusSpansBecomePathLabelledGauges) {
  { ScopedSpan outer("solve"); ScopedSpan inner("lanczos"); }
  const std::string body = to_prometheus(MetricsRegistry::instance().snapshot());
  EXPECT_NE(body.find("netpart_phase_runs{path=\"solve\"} 1\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpart_phase_runs{path=\"solve/lanczos\"} 1\n"),
            std::string::npos);
}

TEST(PromExport, EmptySnapshotIsEmptyBody) {
  EXPECT_TRUE(to_prometheus(MetricsSnapshot{}).empty());
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, ChromeTraceEventsNest) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.add_counter("work.items", 5);
  {
    ScopedSpan outer("outer");
    { ScopedSpan a("a"); }
    { ScopedSpan b("b"); }
  }
  const std::string trace = to_chrome_trace(r.snapshot());
  const JsonValue root = JsonParser(trace).parse();
  const std::vector<JsonValue>& events = root.at("traceEvents").array;

  struct Interval { double ts, end; std::string name; };
  std::vector<Interval> spans;
  bool saw_counter = false;
  bool saw_metadata = false;
  for (const JsonValue& ev : events) {
    const std::string& ph = ev.at("ph").string;
    if (ph == "X")
      spans.push_back({ev.at("ts").number,
                       ev.at("ts").number + ev.at("dur").number,
                       ev.at("name").string});
    if (ph == "C") saw_counter = true;
    if (ph == "M") saw_metadata = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_metadata);
  ASSERT_EQ(spans.size(), 3u);
  const auto find = [&spans](const std::string& name) {
    return *std::find_if(spans.begin(), spans.end(),
                         [&name](const Interval& s) { return s.name == name; });
  };
  const Interval outer = find("outer");
  const Interval a = find("a");
  const Interval b = find("b");
  // Children are contained in the parent and packed without overlap.
  EXPECT_GE(a.ts, outer.ts);
  EXPECT_LE(a.end, outer.end);
  EXPECT_GE(b.ts, outer.ts);
  EXPECT_LE(b.end, outer.end);
  EXPECT_TRUE(a.end <= b.ts || b.end <= a.ts);
}

TEST(TraceExport, EmptySnapshotStillValidJson) {
  const JsonValue root = JsonParser(to_chrome_trace(MetricsSnapshot{})).parse();
  // Only the two metadata records.
  EXPECT_EQ(root.at("traceEvents").array.size(), 2u);
}

// ---------------------------------------------------------------------------
// Owner-thread span guard
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, CrossThreadSpansAreCountedAsDropped) {
  MetricsRegistry& r = MetricsRegistry::instance();
  // set_enabled(true) in SetUp made this thread the span owner; a worker
  // thread's spans must be refused — but visibly, via obs.dropped_spans.
  std::thread worker([] {
    MetricsRegistry::instance().begin_span("worker-span");
    MetricsRegistry::instance().end_span();
    MetricsRegistry::instance().begin_span("worker-span-2");
    MetricsRegistry::instance().end_span();
  });
  worker.join();
  const MetricsSnapshot snap = r.snapshot();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_EQ(snap.counter("obs.dropped_spans"), 2);
  // The counter surfaces through both exporters like any other counter.
  const JsonValue root = JsonParser(snap.to_json()).parse();
  EXPECT_EQ(root.at("counters").at("obs.dropped_spans").number, 2.0);
  const std::string body = to_prometheus(snap);
  EXPECT_NE(body.find("netpart_obs_dropped_spans_total 2\n"),
            std::string::npos);
}

TEST_F(RegistryFixture, OwnerThreadSpansDropNothing) {
  MetricsRegistry& r = MetricsRegistry::instance();
  { ScopedSpan s("owned"); }
  EXPECT_EQ(r.snapshot().counter("obs.dropped_spans"), 0);
}

// ---------------------------------------------------------------------------
// Sampling profiler
// ---------------------------------------------------------------------------

/// Stops the profiler and clears its sample table after each test (the
/// table is process-wide and survives stop(), so a dirty teardown would
/// leak a `profile` section into later snapshot tests).
struct ProfilerFixture : RegistryFixture {
  void TearDown() override {
    Profiler::instance().stop();
    Profiler::instance().start(0);  // start() clears the table...
    Profiler::instance().stop();    // ...and stop() disarms the hooks
    RegistryFixture::TearDown();
  }
};

#if NETPART_OBS_ENABLED

TEST_F(ProfilerFixture, ManualSamplesFoldSpanPaths) {
  Profiler& p = Profiler::instance();
  ASSERT_TRUE(p.start(0));  // hooks armed, no timer: fully deterministic
  {
    ScopedSpan solve("solve");
    {
      ScopedSpan lanczos("lanczos");
      p.sample_now();
      p.sample_now();
    }
    p.sample_now();
  }
  p.sample_now();  // no open span anywhere -> unattributed
  p.stop();

  const ProfileSnapshot snap = p.snapshot();
  EXPECT_EQ(snap.total_samples, 4);
  EXPECT_EQ(snap.unattributed_samples, 1);
  EXPECT_EQ(snap.torn_samples, 0);
  EXPECT_EQ(snap.dropped_samples, 0);
  EXPECT_DOUBLE_EQ(snap.attribution(), 0.75);
  ASSERT_EQ(snap.paths.size(), 2u);
  EXPECT_EQ(snap.paths[0].first, "solve");
  EXPECT_EQ(snap.paths[0].second, 1);
  EXPECT_EQ(snap.paths[1].first, "solve;lanczos");
  EXPECT_EQ(snap.paths[1].second, 2);
}

TEST_F(ProfilerFixture, FoldedExportIsSortedAndDeterministic) {
  Profiler& p = Profiler::instance();
  ASSERT_TRUE(p.start(0));
  {
    ScopedSpan z("zeta");
    p.sample_now();
  }
  {
    ScopedSpan a("alpha");
    p.sample_now();
  }
  p.sample_now();  // unattributed
  p.stop();

  const ProfileSnapshot snap = p.snapshot();
  // Globally sorted, unattributed bucket included in the sort; this is the
  // round-trip contract scripts/validate_folded.py enforces.
  EXPECT_EQ(snap.to_folded(), "(unattributed) 1\nalpha 1\nzeta 1\n");
  EXPECT_EQ(snap.to_folded(), snap.to_folded());
  EXPECT_EQ(snap.to_json(), snap.to_json());
  const ProfileSnapshot again = p.snapshot();
  EXPECT_EQ(snap.to_folded(), again.to_folded());
}

TEST_F(ProfilerFixture, FrameNamesAreSanitizedForTheFoldedFormat) {
  Profiler& p = Profiler::instance();
  ASSERT_TRUE(p.start(0));
  {
    // ';' and ' ' are the folded format's separators; control bytes would
    // break line-oriented consumers.  All must collapse to '_' at push time.
    ScopedSpan hostile("a;b c\nd");
    p.sample_now();
  }
  p.stop();
  const ProfileSnapshot snap = p.snapshot();
  ASSERT_EQ(snap.paths.size(), 1u);
  EXPECT_EQ(snap.paths[0].first, "a_b_c_d");
}

TEST_F(ProfilerFixture, WorkerThreadSpansAreAttributed) {
  Profiler& p = Profiler::instance();
  ASSERT_TRUE(p.start(0));
  // The metrics registry drops worker-thread spans (owner guard above); the
  // profiler must not — pool workers carry real samples.
  std::thread worker([&p] {
    ScopedSpan span("worker-phase");
    p.sample_now();
  });
  worker.join();
  p.stop();
  const ProfileSnapshot snap = p.snapshot();
  ASSERT_EQ(snap.paths.size(), 1u);
  EXPECT_EQ(snap.paths[0].first, "worker-phase");
  EXPECT_EQ(snap.unattributed_samples, 0);
}

TEST_F(ProfilerFixture, StartWhileRunningFailsAndRestartClears) {
  Profiler& p = Profiler::instance();
  ASSERT_TRUE(p.start(0));
  EXPECT_FALSE(p.start(0));
  {
    ScopedSpan s("first-run");
    p.sample_now();
  }
  p.stop();
  EXPECT_EQ(p.snapshot().total_samples, 1);
  // Samples survive stop() (dump-after-stop), but the next start() clears.
  ASSERT_TRUE(p.start(0));
  p.stop();
  EXPECT_EQ(p.snapshot().total_samples, 0);
  EXPECT_TRUE(p.snapshot().empty());
}

TEST_F(ProfilerFixture, ProfileSectionRidesInMetricsSnapshots) {
  Profiler& p = Profiler::instance();
  ASSERT_TRUE(p.start(0));
  {
    ScopedSpan s("phase");
    p.sample_now();
  }
  p.stop();
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_FALSE(snap.profile.empty());
  const JsonValue root = JsonParser(snap.to_json()).parse();
  const JsonValue& profile = root.at("profile");
  EXPECT_EQ(profile.at("total_samples").number, 1.0);
  EXPECT_EQ(profile.at("unattributed_samples").number, 0.0);
  EXPECT_EQ(profile.at("samples").at("phase").number, 1.0);
}

TEST_F(ProfilerFixture, NoProfileSectionWithoutSamples) {
  // Byte-stability of existing exports: a snapshot with no profiler samples
  // must serialize exactly as before the profiler existed.
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_TRUE(snap.profile.empty());
  EXPECT_EQ(snap.to_json().find("\"profile\""), std::string::npos);
}

TEST_F(ProfilerFixture, TimerDrivenSamplingAttributesCpuWork) {
  Profiler& p = Profiler::instance();
  ASSERT_TRUE(p.start(1000));  // real ITIMER_PROF, 1 ms of CPU per tick
  volatile double sink = 0.0;
  {
    ScopedSpan busy("busy-loop");
    // Burn CPU until a few ticks land (bounded so a broken timer cannot
    // hang the suite; the profiler asserts below will then fail loudly).
    for (int outer = 0; outer < 5000 && p.snapshot().total_samples < 3;
         ++outer)
      for (int i = 0; i < 200'000; ++i)
        sink = sink + static_cast<double>(i) * 1e-9;
  }
  p.stop();
  const ProfileSnapshot snap = p.snapshot();
  // CPU was burned inside the span, so ticks must have landed — and on the
  // busy-loop path, not the unattributed bucket.
  EXPECT_GT(snap.total_samples, 0);
  bool saw_busy = false;
  for (const auto& [path, count] : snap.paths)
    if (path == "busy-loop" && count > 0) saw_busy = true;
  EXPECT_TRUE(saw_busy);
}

#endif  // NETPART_OBS_ENABLED

TEST_F(ProfilerFixture, StubProfilerIsTotalInBothConfigs) {
  // This test runs in BOTH configurations: the OBS=OFF stub must accept the
  // same call sequence the real profiler does (CLI/server code is written
  // against that contract, with no #ifdefs).
  Profiler& p = Profiler::instance();
  EXPECT_TRUE(p.start(0));
  Profiler::push_frame("x");
  Profiler::pop_frame();
  p.sample_now();
  p.stop();
  EXPECT_FALSE(p.running());
  const ProfileSnapshot snap = p.snapshot();
  EXPECT_EQ(snap.to_folded(), snap.to_folded());
#if !NETPART_OBS_ENABLED
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.to_folded(), "");
#endif
}

// ---------------------------------------------------------------------------
// Convergence event ring
// ---------------------------------------------------------------------------

TEST(EventRing, EmitDrainRoundTripPreservesOrder) {
  EventRing& ring = EventRing::instance();
  ring.arm();
  NETPART_EVENT("test.alpha", {"j", 1.0}, {"residual", 0.25});
  NETPART_EVENT("test.beta", {"gain", -3.0});
  ring.disarm();
#if NETPART_OBS_ENABLED
  EXPECT_EQ(ring.recorded(), 2);
  EXPECT_EQ(ring.dropped(), 0);

  const std::string ndjson = ring.drain_ndjson();
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = ndjson.find('\n'); nl != std::string::npos;
       nl = ndjson.find('\n', start)) {
    lines.push_back(ndjson.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue first = JsonParser(lines[0]).parse();
  EXPECT_EQ(first.at("seq").number, 0.0);
  EXPECT_EQ(first.at("kind").string, "test.alpha");
  EXPECT_EQ(first.at("j").number, 1.0);
  EXPECT_DOUBLE_EQ(first.at("residual").number, 0.25);
  EXPECT_GE(first.at("t_ms").number, 0.0);
  const JsonValue second = JsonParser(lines[1]).parse();
  EXPECT_EQ(second.at("seq").number, 1.0);
  EXPECT_EQ(second.at("kind").string, "test.beta");
  EXPECT_EQ(second.at("gain").number, -3.0);

  const JsonValue arr = JsonParser(ring.drain_json_array()).parse();
  ASSERT_EQ(arr.array.size(), 2u);
  EXPECT_EQ(arr.array[0].at("kind").string, "test.alpha");
  EXPECT_EQ(arr.array[1].at("kind").string, "test.beta");
#else
  EXPECT_EQ(ring.recorded(), 0);
  EXPECT_EQ(ring.drain_ndjson(), "");
  EXPECT_EQ(ring.drain_json_array(), "[]");
#endif
}

TEST(EventRing, DisarmedEmitsAreIgnored) {
  EventRing& ring = EventRing::instance();
  ring.arm();
  ring.disarm();
  NETPART_EVENT("test.ignored", {"v", 1.0});
  EXPECT_EQ(ring.recorded(), 0);
  EXPECT_EQ(ring.drain_json_array(), "[]");
}

TEST(EventRing, RearmClearsThePreviousRun) {
  EventRing& ring = EventRing::instance();
  ring.arm();
  NETPART_EVENT("test.old", {"v", 1.0});
  ring.disarm();
  ring.arm();
  ring.disarm();
  EXPECT_EQ(ring.recorded(), 0);
  EXPECT_EQ(ring.drain_json_array(), "[]");
}

#if NETPART_OBS_ENABLED
TEST(EventRing, ConcurrentEmittersLoseNoEvents) {
  EventRing& ring = EventRing::instance();
  ring.arm();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        NETPART_EVENT("test.concurrent", {"thread", static_cast<double>(t)},
                      {"i", static_cast<double>(i)});
    });
  for (auto& w : workers) w.join();
  ring.disarm();
  EXPECT_EQ(ring.recorded(), kThreads * kPerThread);
  EXPECT_EQ(ring.dropped(), 0);
  const JsonValue arr = JsonParser(ring.drain_json_array()).parse();
  EXPECT_EQ(arr.array.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(EventRing, FullRingDropsNewEventsNotOldOnes) {
  EventRing& ring = EventRing::instance();
  ring.arm();
  const auto total = static_cast<std::int64_t>(kEventRingCapacity) + 100;
  for (std::int64_t i = 0; i < total; ++i)
    NETPART_EVENT("test.flood", {"i", static_cast<double>(i)});
  ring.disarm();
  EXPECT_EQ(ring.recorded(), total);
  EXPECT_EQ(ring.dropped(), 100);
  // Drop-new: the head of the series survives; the flood's tail is what
  // went missing.  (The early Lanczos iterations are the interesting part.)
  const std::string ndjson = ring.drain_ndjson();
  const JsonValue first =
      JsonParser(ndjson.substr(0, ndjson.find('\n'))).parse();
  EXPECT_EQ(first.at("i").number, 0.0);
  ring.arm();  // leave the ring empty for later tests
  ring.disarm();
}
#endif  // NETPART_OBS_ENABLED

#if !NETPART_OBS_ENABLED
TEST(EventRing, CompiledOutEventMacroDoesNotEvaluateArguments) {
  int evaluations = 0;
  const auto touch = [&evaluations]() {
    ++evaluations;
    return 1.0;
  };
  (void)touch;  // only ever referenced inside the discarded macro arguments
  EventRing::instance().arm();
  NETPART_EVENT("x", {"v", touch()});
  EventRing::instance().disarm();
  EXPECT_EQ(evaluations, 0);
}
#endif

// ---------------------------------------------------------------------------
// Trace context (always compiled: serving telemetry, like the rolling
// histograms)
// ---------------------------------------------------------------------------

TEST(TraceContext, FormatAndParseRoundTrip) {
  EXPECT_EQ(format_trace_id(0x0011223344556677ULL, 0x8899aabbccddeeffULL),
            "00112233445566778899aabbccddeeff");
  EXPECT_EQ(format_span_id(0x0123456789abcdefULL), "0123456789abcdef");

  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  ASSERT_TRUE(parse_trace_id("00112233445566778899aabbccddeeff", hi, lo));
  EXPECT_EQ(hi, 0x0011223344556677ULL);
  EXPECT_EQ(lo, 0x8899aabbccddeeffULL);
  // Case-insensitive in, canonical lowercase out.
  ASSERT_TRUE(parse_trace_id("00112233445566778899AABBCCDDEEFF", hi, lo));
  EXPECT_EQ(format_trace_id(hi, lo), "00112233445566778899aabbccddeeff");

  std::uint64_t span = 0;
  ASSERT_TRUE(parse_span_id("FEEDFACEfeedface", span));
  EXPECT_EQ(span, 0xfeedfacefeedfaceULL);
}

TEST(TraceContext, ParseRejectsMalformedIds) {
  std::uint64_t hi = 1;
  std::uint64_t lo = 2;
  EXPECT_FALSE(parse_trace_id("", hi, lo));
  EXPECT_FALSE(parse_trace_id("0011", hi, lo));                      // short
  EXPECT_FALSE(parse_trace_id(std::string(33, 'a'), hi, lo));        // long
  EXPECT_FALSE(parse_trace_id(std::string(31, 'a') + "g", hi, lo));  // non-hex
  EXPECT_EQ(hi, 1u);  // outputs untouched on failure
  EXPECT_EQ(lo, 2u);
  std::uint64_t span = 3;
  EXPECT_FALSE(parse_span_id("0123456789abcde", span));
  EXPECT_FALSE(parse_span_id("0123456789abcdeZ", span));
  EXPECT_EQ(span, 3u);
}

TEST(TraceContext, GeneratedContextsAreValidAndDistinct) {
  const TraceContext a = generate_trace_context();
  const TraceContext b = generate_trace_context();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.span_id, 0u);
  EXPECT_EQ(a.parent_span, 0u);
  EXPECT_NE(format_trace_id(a.trace_hi, a.trace_lo),
            format_trace_id(b.trace_hi, b.trace_lo));
  EXPECT_NE(generate_span_id(), generate_span_id());
}

TEST(StageClock, DurationsAreDeltasBetweenConsecutiveMarks) {
  StageClock clock;
  clock.start(1'000'000);  // ns
  clock.mark(Stage::kParse, 1'005'000);       // +5us
  clock.mark(Stage::kAdmission, 1'007'000);   // +2us
  clock.mark(Stage::kQueue, 1'107'000);       // +100us
  clock.mark(Stage::kExecute, 2'107'000);     // +1000us
  clock.mark(Stage::kSerialize, 2'110'000);   // +3us
  clock.mark(Stage::kWrite, 2'112'500);       // +2.5us -> floor 2
  EXPECT_EQ(clock.duration_us(Stage::kParse), 5);
  EXPECT_EQ(clock.duration_us(Stage::kAdmission), 2);
  EXPECT_EQ(clock.duration_us(Stage::kQueue), 100);
  EXPECT_EQ(clock.duration_us(Stage::kExecute), 1000);
  EXPECT_EQ(clock.duration_us(Stage::kSerialize), 3);
  EXPECT_EQ(clock.duration_us(Stage::kWrite), 2);
  EXPECT_EQ(clock.total_us(), 1112);  // 1'112'500 ns, floored
  EXPECT_EQ(clock.begin_offset_us(Stage::kParse), 0);
  EXPECT_EQ(clock.begin_offset_us(Stage::kQueue), 7);
  EXPECT_EQ(clock.begin_offset_us(Stage::kExecute), 107);
}

TEST(StageClock, SkippedStagesHaveZeroDurationAndBridgeTheGap) {
  StageClock clock;
  clock.start(0);
  clock.mark(Stage::kParse, 4'000);
  // Admission and queue never happen (e.g. shed before submit)...
  clock.mark(Stage::kWrite, 10'000);
  EXPECT_EQ(clock.duration_us(Stage::kAdmission), 0);
  EXPECT_EQ(clock.duration_us(Stage::kQueue), 0);
  EXPECT_EQ(clock.duration_us(Stage::kExecute), 0);
  // ...so the next marked stage measures from the latest earlier mark.
  EXPECT_EQ(clock.duration_us(Stage::kWrite), 6);
  EXPECT_EQ(clock.total_us(), 10);
}

TEST(StageClock, WireStageNamesAreStable) {
  EXPECT_STREQ(stage_name(Stage::kParse), "parse");
  EXPECT_STREQ(stage_name(Stage::kAdmission), "admission");
  EXPECT_STREQ(stage_name(Stage::kQueue), "queue");
  EXPECT_STREQ(stage_name(Stage::kExecute), "execute");
  EXPECT_STREQ(stage_name(Stage::kSerialize), "serialize");
  EXPECT_STREQ(stage_name(Stage::kWrite), "write");
}

TEST(PromExport, RollingExemplarAnnotatesTheP99Sample) {
  MetricsSnapshot snap;
  RollingEntry entry;
  entry.name = "class_latency_ms.cold";
  entry.window_ms = 60000;
  for (int i = 0; i < 10; ++i) histogram_record(entry.window, 4.0);
  entry.exemplar_trace_id = "00112233445566778899aabbccddeeff";
  entry.exemplar_value = 4.0;
  entry.exemplar_ts_ms = 1700000000500;
  snap.rolling.push_back(entry);
  const std::string body = to_prometheus(snap);
  // The annotation rides the p99 sample line, after the value, behind a
  // '#': classic text-format parsers read it as a comment.
  EXPECT_NE(
      body.find("netpart_class_latency_ms_cold{quantile=\"0.99\"} 4 "
                "# {trace_id=\"00112233445566778899aabbccddeeff\"} 4 "
                "1700000000.5\n"),
      std::string::npos)
      << body;
  // The p50 sample stays bare.
  EXPECT_NE(body.find("netpart_class_latency_ms_cold{quantile=\"0.5\"} 4\n"),
            std::string::npos);

  // Without an exemplar the p99 line is bare too.
  MetricsSnapshot plain;
  RollingEntry bare = entry;
  bare.exemplar_trace_id.clear();
  plain.rolling.push_back(bare);
  EXPECT_NE(to_prometheus(plain).find(
                "netpart_class_latency_ms_cold{quantile=\"0.99\"} 4\n"),
            std::string::npos);
}

TEST(TraceExport, RequestOverlayAddsTracedTimelineThread) {
  MetricsSnapshot snap;  // empty pipeline snapshot: overlay stands alone
  const std::vector<RequestStageEvent> stages = {
      {"parse", 0, 5}, {"admission", 5, 2}, {"queue", 7, 100},
      {"execute", 107, 1000}};
  const std::string trace = to_chrome_trace(
      snap, "netpart", "00112233445566778899aabbccddeeff", stages);
  const JsonValue root = JsonParser(trace).parse();
  const std::vector<JsonValue>& events = root.at("traceEvents").array;

  const JsonValue* request = nullptr;
  std::vector<const JsonValue*> stage_events;
  for (const JsonValue& ev : events) {
    if (ev.at("ph").string != "X") continue;
    EXPECT_EQ(ev.at("tid").number, 2.0);  // the request timeline thread
    EXPECT_EQ(ev.at("args").at("trace_id").string,
              "00112233445566778899aabbccddeeff");
    if (ev.at("name").string == "request")
      request = &ev;
    else
      stage_events.push_back(&ev);
  }
  ASSERT_NE(request, nullptr);
  ASSERT_EQ(stage_events.size(), 4u);
  // The root spans every stage; children sit inside it on a real timeline.
  EXPECT_EQ(request->at("ts").number, 0.0);
  EXPECT_EQ(request->at("dur").number, 1107.0);
  for (const JsonValue* ev : stage_events) {
    EXPECT_EQ(ev->at("name").string.rfind("stage.", 0), 0u);
    EXPECT_GE(ev->at("ts").number, request->at("ts").number);
    EXPECT_LE(ev->at("ts").number + ev->at("dur").number,
              request->at("ts").number + request->at("dur").number);
  }

  // No trace context, no overlay: the plain export shape is unchanged.
  EXPECT_EQ(to_chrome_trace(snap, "netpart", "", {}), to_chrome_trace(snap));
}

}  // namespace
}  // namespace netpart::obs
