#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace netpart::obs {
namespace {

/// RAII guard: every test runs against a clean, enabled registry and leaves
/// it disabled and empty for the next one (the registry is process-wide).
struct RegistryFixture : ::testing::Test {
  void SetUp() override {
    MetricsRegistry::instance().reset();
    MetricsRegistry::instance().set_enabled(true);
  }
  void TearDown() override {
    MetricsRegistry::instance().set_enabled(false);
    MetricsRegistry::instance().reset();
  }
};

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to round-trip what to_json() emits.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::out_of_range("missing key: " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      const JsonValue key = string();
      skip_ws();
      expect(':');
      v.object.emplace(key.string, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        v.string += c;
        continue;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'u': {
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          v.string += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          break;
        }
        default: throw std::runtime_error("bad escape");
      }
    }
    ++pos_;
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (text_.substr(pos_, 4) != "null") throw std::runtime_error("bad null");
    pos_ += 4;
    return {};
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad number");
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, NestedSpansFormATree) {
  MetricsRegistry& r = MetricsRegistry::instance();
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner");
      ScopedSpan innermost("innermost");
      (void)innermost;
    }
    ScopedSpan sibling("sibling");
    (void)sibling;
  }
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  const SpanNode& outer = snap.spans.front();
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1);
  EXPECT_GE(outer.wall_ms, 0.0);
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[1].name, "sibling");
  ASSERT_EQ(outer.children[0].children.size(), 1u);
  EXPECT_EQ(outer.children[0].children[0].name, "innermost");
  // A parent's accumulated time includes its children's.
  EXPECT_GE(outer.wall_ms, outer.children[0].wall_ms);
}

TEST_F(RegistryFixture, SameNameSiblingSpansMerge) {
  MetricsRegistry& r = MetricsRegistry::instance();
  {
    ScopedSpan sweep("sweep");
    for (int i = 0; i < 5; ++i) {
      ScopedSpan split("split");
      (void)split;
    }
  }
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  ASSERT_EQ(snap.spans[0].children.size(), 1u);
  EXPECT_EQ(snap.spans[0].children[0].name, "split");
  EXPECT_EQ(snap.spans[0].children[0].count, 5);
}

TEST_F(RegistryFixture, SnapshotCreditsOpenSpans) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.begin_span("still-open");
  const MetricsSnapshot snap = r.snapshot();
  r.end_span();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "still-open");
  EXPECT_EQ(snap.spans[0].count, 1);
  EXPECT_GE(snap.spans[0].wall_ms, 0.0);
  // The registry itself still has the span open: closing it must not
  // double-count (count stays 1 in the final snapshot).
  EXPECT_EQ(r.snapshot().spans[0].count, 1);
}

TEST_F(RegistryFixture, DisableMidScopeKeepsStackBalanced) {
  MetricsRegistry& r = MetricsRegistry::instance();
  {
    ScopedSpan outer("outer");
    r.set_enabled(false);
  }  // destructor must still close "outer"
  r.set_enabled(true);
  {
    ScopedSpan top("top");
    (void)top;
  }
  const MetricsSnapshot snap = r.snapshot();
  // "top" is a root, not a child of a dangling "outer".
  ASSERT_EQ(snap.spans.size(), 2u);
  EXPECT_EQ(snap.spans[0].name, "outer");
  EXPECT_TRUE(snap.spans[0].children.empty());
  EXPECT_EQ(snap.spans[1].name, "top");
}

TEST_F(RegistryFixture, EndSpanWithoutOpenSpanIsNoOp) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.end_span();  // must not crash or underflow
  EXPECT_TRUE(r.snapshot().spans.empty());
}

// ---------------------------------------------------------------------------
// Counters, gauges, histograms
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, CountersAccumulate) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.add_counter("a.hits", 1);
  r.add_counter("a.hits", 41);
  r.add_counter("b.misses", 7);
  EXPECT_EQ(r.counter("a.hits"), 42);
  EXPECT_EQ(r.counter("b.misses"), 7);
  EXPECT_EQ(r.counter("never.touched"), 0);
  const MetricsSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.counter("a.hits"), 42);
  ASSERT_EQ(snap.counters.size(), 2u);
  // Snapshot entries are sorted by name.
  EXPECT_EQ(snap.counters[0].name, "a.hits");
  EXPECT_EQ(snap.counters[1].name, "b.misses");
}

TEST_F(RegistryFixture, GaugesOverwrite) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_gauge("lambda2", 0.25);
  r.set_gauge("lambda2", 0.5);
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.5);
}

TEST_F(RegistryFixture, HistogramBucketsArePowersOfTwo) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.record_histogram("h", 0.5);   // bucket 0: < 1
  r.record_histogram("h", 1.0);   // bucket 1: [1, 2)
  r.record_histogram("h", 3.0);   // bucket 2: [2, 4)
  r.record_histogram("h", 3.9);   // bucket 2
  r.record_histogram("h", 1e12);  // clamped to the open-ended last bucket
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramEntry& h = snap.histograms[0];
  EXPECT_EQ(h.count, 5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1e12);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 3.0 + 3.9 + 1e12);
  EXPECT_NEAR(h.mean(), h.sum / 5.0, 1e-9);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 1);
  EXPECT_EQ(h.buckets[2], 2);
  EXPECT_EQ(h.buckets[kHistogramBuckets - 1], 1);
}

TEST_F(RegistryFixture, DisabledRegistryRecordsNothing) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_enabled(false);
  r.add_counter("c", 1);
  r.set_gauge("g", 1.0);
  r.record_histogram("h", 1.0);
  r.begin_span("s");
  r.end_span();
  NETPART_COUNTER_ADD("macro.c", 1);
  NETPART_GAUGE_SET("macro.g", 1.0);
  NETPART_HISTOGRAM_RECORD("macro.h", 1.0);
  { NETPART_SPAN("macro.s"); }
  r.set_enabled(true);
  EXPECT_TRUE(r.snapshot().empty());
}

TEST_F(RegistryFixture, ResetDropsEverything) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_run_label("before");
  r.add_counter("c", 1);
  r.begin_span("open");
  r.reset();
  r.end_span();  // the abandoned span must not resurface
  const MetricsSnapshot snap = r.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_TRUE(snap.run_label.empty());
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, MacrosRecordWhenCompiledInAndEnabled) {
  MetricsRegistry& r = MetricsRegistry::instance();
  {
    NETPART_SPAN("macro-span");
    NETPART_COUNTER_ADD("macro.counter", 3);
    NETPART_GAUGE_SET("macro.gauge", 2.5);
    NETPART_HISTOGRAM_RECORD("macro.hist", 4.0);
  }
  const MetricsSnapshot snap = r.snapshot();
#if NETPART_OBS_ENABLED
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "macro-span");
  EXPECT_EQ(snap.counter("macro.counter"), 3);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
#else
  // Compiled out: the macros above must have expanded to nothing even
  // though the registry is enabled.
  EXPECT_TRUE(snap.empty());
#endif
}

#if !NETPART_OBS_ENABLED
TEST_F(RegistryFixture, CompiledOutMacrosDoNotEvaluateArguments) {
  int evaluations = 0;
  const auto touch = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  (void)touch;  // only ever referenced inside the discarded macro arguments
  NETPART_COUNTER_ADD("x", touch());
  NETPART_GAUGE_SET("x", static_cast<double>(touch()));
  NETPART_HISTOGRAM_RECORD("x", static_cast<double>(touch()));
  EXPECT_EQ(evaluations, 0);
}
#endif

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

TEST_F(RegistryFixture, JsonRoundTrip) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_run_label("bm1/igmatch");
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
    (void)inner;
  }
  r.add_counter("lanczos.iterations", 160);
  r.set_gauge("fiedler.lambda2", 0.0778551);
  r.record_histogram("repair.cost", 3.0);
  r.record_histogram("repair.cost", 17.0);
  const MetricsSnapshot snap = r.snapshot();

  const JsonValue root = JsonParser(snap.to_json()).parse();
  EXPECT_EQ(root.at("label").string, "bm1/igmatch");

  const JsonValue& spans = root.at("spans");
  ASSERT_EQ(spans.array.size(), 1u);
  EXPECT_EQ(spans.array[0].at("name").string, "outer");
  EXPECT_EQ(spans.array[0].at("count").number, 1.0);
  ASSERT_EQ(spans.array[0].at("children").array.size(), 1u);
  EXPECT_EQ(spans.array[0].at("children").array[0].at("name").string,
            "inner");

  EXPECT_EQ(root.at("counters").at("lanczos.iterations").number, 160.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("fiedler.lambda2").number, 0.0778551);

  const JsonValue& hist = root.at("histograms").at("repair.cost");
  EXPECT_EQ(hist.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 20.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 17.0);
  // 3 -> bucket 2, 17 -> bucket 5; trailing zero buckets are elided.
  const std::vector<JsonValue>& buckets = hist.at("buckets").array;
  ASSERT_EQ(buckets.size(), 6u);
  EXPECT_EQ(buckets[2].number, 1.0);
  EXPECT_EQ(buckets[5].number, 1.0);
}

TEST_F(RegistryFixture, JsonEscapesControlCharactersAndQuotes) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_run_label("a\"b\\c\nd\te\x01f");
  r.add_counter("weird \"name\"", 1);
  const std::string json = r.snapshot().to_json();
  const JsonValue root = JsonParser(json).parse();
  EXPECT_EQ(root.at("label").string, "a\"b\\c\nd\te\x01f");
  EXPECT_EQ(root.at("counters").at("weird \"name\"").number, 1.0);
}

TEST(JsonEscape, Direct) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("q\"q"), "q\\\"q");
  EXPECT_EQ(json_escape("b\\b"), "b\\\\b");
  EXPECT_EQ(json_escape("n\nn"), "n\\nn");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST_F(RegistryFixture, EmptySnapshotSerializesToValidJson) {
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  const JsonValue root = JsonParser(snap.to_json()).parse();
  EXPECT_TRUE(root.at("spans").array.empty());
  EXPECT_TRUE(root.at("counters").object.empty());
  EXPECT_TRUE(root.at("gauges").object.empty());
  EXPECT_TRUE(root.at("histograms").object.empty());
}

TEST_F(RegistryFixture, NonFiniteGaugesSerializeAsNull) {
  MetricsRegistry& r = MetricsRegistry::instance();
  r.set_gauge("bad", std::numeric_limits<double>::infinity());
  const JsonValue root = JsonParser(r.snapshot().to_json()).parse();
  EXPECT_EQ(root.at("gauges").at("bad").kind, JsonValue::Kind::kNull);
}

}  // namespace
}  // namespace netpart::obs
