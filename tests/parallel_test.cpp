/// Unit tests for the shared deterministic parallel runtime: pool
/// scheduling (every index executed exactly once, lanes in range, nested
/// regions inline) and the fixed-chunk deterministic reductions that make
/// dot products bit-identical for any lane count.

#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace netpart::parallel {
namespace {

/// Restores the pool to a single lane after each test so test order cannot
/// leak configuration.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::instance().configure(1); }
};

TEST_F(ParallelTest, DefaultLanesIsPositive) {
  EXPECT_GE(ThreadPool::default_lanes(), 1);
}

TEST_F(ParallelTest, ConfigureRoundTrips) {
  ThreadPool& pool = ThreadPool::instance();
  pool.configure(3);
  EXPECT_EQ(pool.lanes(), 3);
  pool.configure(1);
  EXPECT_EQ(pool.lanes(), 1);
  pool.configure(0);  // auto
  EXPECT_EQ(pool.lanes(), ThreadPool::default_lanes());
}

TEST_F(ParallelTest, RunChunksCoversEveryIndexExactlyOnce) {
  for (const std::int32_t lanes : {1, 2, 8}) {
    ThreadPool& pool = ThreadPool::instance();
    pool.configure(lanes);
    constexpr std::int64_t kN = 10007;  // prime: uneven final chunk
    std::vector<std::atomic<std::int32_t>> hits(kN);
    pool.run_chunks(0, kN, 64, 0,
                    [&](std::int64_t lo, std::int64_t hi, std::size_t lane) {
                      EXPECT_LT(lane, static_cast<std::size_t>(pool.lanes()));
                      for (std::int64_t i = lo; i < hi; ++i)
                        hits[static_cast<std::size_t>(i)].fetch_add(1);
                    });
    for (std::int64_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " at lanes=" << lanes;
  }
}

TEST_F(ParallelTest, MaxLanesCapsParticipation) {
  ThreadPool& pool = ThreadPool::instance();
  pool.configure(8);
  std::atomic<std::int64_t> covered{0};
  pool.run_chunks(0, 1000, 10, 2,
                  [&](std::int64_t lo, std::int64_t hi, std::size_t lane) {
                    EXPECT_LT(lane, std::size_t{2});
                    covered.fetch_add(hi - lo);
                  });
  EXPECT_EQ(covered.load(), 1000);
}

TEST_F(ParallelTest, NestedRegionsRunInline) {
  ThreadPool& pool = ThreadPool::instance();
  pool.configure(4);
  std::vector<std::atomic<std::int32_t>> hits(256);
  pool.run_chunks(0, 4, 1, 0,
                  [&](std::int64_t task, std::int64_t, std::size_t lane) {
                    // Inside a region: a nested parallel_for must complete
                    // inline on this lane without deadlocking the pool.
                    parallel_for(task * 64, (task + 1) * 64, 8,
                                 [&](std::int64_t lo, std::int64_t hi) {
                                   EXPECT_EQ(ThreadPool::current_lane(),
                                             static_cast<std::int32_t>(lane));
                                   for (std::int64_t i = lo; i < hi; ++i)
                                     hits[static_cast<std::size_t>(i)]
                                         .fetch_add(1);
                                 });
                  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

/// The serial reference for deterministic_sum: per-chunk serial partials
/// combined in ascending chunk order.
double chunked_reference_sum(const std::vector<double>& v) {
  const auto n = static_cast<std::int64_t>(v.size());
  double acc = 0.0;
  bool first = true;
  for (std::int64_t lo = 0; lo < n; lo += kReductionChunk) {
    const std::int64_t hi = std::min(lo + kReductionChunk, n);
    double partial = 0.0;
    for (std::int64_t i = lo; i < hi; ++i)
      partial += v[static_cast<std::size_t>(i)];
    acc = first ? partial : acc + partial;
    first = false;
  }
  return acc;
}

std::vector<double> awkward_values(std::size_t n) {
  // Values spanning many magnitudes so summation order matters: any
  // deviation from the fixed chunk order shows up in the low bits.
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::ldexp(1.0 + static_cast<double>(i % 997) * 1e-5,
                      static_cast<int>(i % 41) - 20);
  return v;
}

TEST_F(ParallelTest, DeterministicSumMatchesChunkedReferenceAtEveryLaneCount) {
  const std::vector<double> v = awkward_values(3 * 4096 + 1234);
  const double reference = chunked_reference_sum(v);
  for (const std::int32_t lanes : {1, 2, 8}) {
    ThreadPool::instance().configure(lanes);
    const double got = deterministic_sum(
        static_cast<std::int64_t>(v.size()),
        [&](std::int64_t lo, std::int64_t hi) {
          double acc = 0.0;
          for (std::int64_t i = lo; i < hi; ++i)
            acc += v[static_cast<std::size_t>(i)];
          return acc;
        });
    EXPECT_EQ(got, reference) << "lanes=" << lanes;  // bitwise
  }
}

TEST_F(ParallelTest, SingleChunkSumEqualsPlainSerialLoop) {
  const std::vector<double> v = awkward_values(kReductionChunk - 7);
  double serial = 0.0;
  for (const double x : v) serial += x;
  ThreadPool::instance().configure(8);
  const double got = deterministic_sum(
      static_cast<std::int64_t>(v.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        double acc = 0.0;
        for (std::int64_t i = lo; i < hi; ++i)
          acc += v[static_cast<std::size_t>(i)];
        return acc;
      });
  EXPECT_EQ(got, serial);
}

TEST_F(ParallelTest, DotIsBitIdenticalAcrossLaneCounts) {
  const std::vector<double> x = awkward_values(3 * 4096 + 19);
  std::vector<double> y = awkward_values(x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = 1.0 / (y[i] + 2.0);
  ThreadPool::instance().configure(1);
  const double reference = linalg::dot(x, y);
  for (const std::int32_t lanes : {2, 8}) {
    ThreadPool::instance().configure(lanes);
    EXPECT_EQ(linalg::dot(x, y), reference) << "lanes=" << lanes;
  }
}

TEST_F(ParallelTest, SpmvIsBitIdenticalAcrossLaneCounts) {
  // A banded matrix large enough to span many row chunks.
  constexpr std::int32_t kN = 6000;
  std::vector<linalg::Triplet> triplets;
  for (std::int32_t r = 0; r < kN; ++r)
    for (std::int32_t offset = -3; offset <= 3; ++offset) {
      const std::int32_t c = r + offset;
      if (c < 0 || c >= kN) continue;
      triplets.push_back(
          {r, c, 1.0 / (1.0 + std::abs(offset)) + 1e-9 * r});
    }
  const linalg::CsrMatrix a =
      linalg::CsrMatrix::from_triplets(kN, std::move(triplets));
  const std::vector<double> x = awkward_values(kN);
  std::vector<double> reference(kN);
  ThreadPool::instance().configure(1);
  a.multiply(x, reference);
  for (const std::int32_t lanes : {2, 8}) {
    ThreadPool::instance().configure(lanes);
    std::vector<double> y(kN);
    a.multiply(x, y);
    EXPECT_EQ(y, reference) << "lanes=" << lanes;
  }
}

}  // namespace
}  // namespace netpart::parallel
