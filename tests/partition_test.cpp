#include "hypergraph/partition.hpp"

#include <gtest/gtest.h>

namespace netpart {
namespace {

TEST(Side, OppositeFlips) {
  EXPECT_EQ(opposite(Side::kLeft), Side::kRight);
  EXPECT_EQ(opposite(Side::kRight), Side::kLeft);
}

TEST(Partition, DefaultAllLeft) {
  const Partition p(4);
  EXPECT_EQ(p.size(Side::kLeft), 4);
  EXPECT_EQ(p.size(Side::kRight), 0);
  EXPECT_FALSE(p.is_proper());
}

TEST(Partition, AssignMaintainsCounts) {
  Partition p(4);
  p.assign(0, Side::kRight);
  p.assign(1, Side::kRight);
  EXPECT_EQ(p.size(Side::kLeft), 2);
  EXPECT_EQ(p.size(Side::kRight), 2);
  EXPECT_TRUE(p.is_proper());
  // Re-assigning to the same side is a no-op.
  p.assign(0, Side::kRight);
  EXPECT_EQ(p.size(Side::kRight), 2);
}

TEST(Partition, FlipTogglesSide) {
  Partition p(2);
  p.flip(1);
  EXPECT_EQ(p.side(1), Side::kRight);
  p.flip(1);
  EXPECT_EQ(p.side(1), Side::kLeft);
}

TEST(Partition, SizeProduct) {
  Partition p(10);
  for (ModuleId m = 0; m < 3; ++m) p.assign(m, Side::kRight);
  EXPECT_EQ(p.size_product(), 7 * 3);
}

TEST(Partition, MembersSortedAscending) {
  Partition p(5);
  p.assign(4, Side::kRight);
  p.assign(1, Side::kRight);
  const auto right = p.members(Side::kRight);
  ASSERT_EQ(right.size(), 2u);
  EXPECT_EQ(right[0], 1);
  EXPECT_EQ(right[1], 4);
  const auto left = p.members(Side::kLeft);
  ASSERT_EQ(left.size(), 3u);
  EXPECT_EQ(left[0], 0);
}

TEST(Partition, FromExplicitSides) {
  const Partition p({Side::kRight, Side::kLeft, Side::kRight});
  EXPECT_EQ(p.num_modules(), 3);
  EXPECT_EQ(p.size(Side::kLeft), 1);
  EXPECT_EQ(p.side(0), Side::kRight);
}

TEST(Partition, CanonicalizePutsSmallSideLeft) {
  Partition p(5);  // all left
  p.assign(0, Side::kRight);
  // left = 4, right = 1 -> canonical form flips.
  p.canonicalize();
  EXPECT_EQ(p.size(Side::kLeft), 1);
  EXPECT_EQ(p.side(0), Side::kLeft);
}

TEST(Partition, CanonicalizeTieKeepsModuleZeroLeft) {
  Partition p(4);
  p.assign(0, Side::kRight);
  p.assign(1, Side::kRight);
  p.canonicalize();
  EXPECT_EQ(p.side(0), Side::kLeft);
  EXPECT_EQ(p.size(Side::kLeft), 2);
}

TEST(Partition, EqualityComparesSides) {
  Partition a(3);
  Partition b(3);
  EXPECT_EQ(a, b);
  a.assign(2, Side::kRight);
  EXPECT_FALSE(a == b);
  b.assign(2, Side::kRight);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace netpart
