#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"

namespace netpart {
namespace {

Hypergraph test_circuit() {
  GeneratorConfig c;
  c.name = "partitioner-test";
  c.num_modules = 130;
  c.num_nets = 150;
  c.leaf_max = 12;
  return generate_circuit(c).hypergraph;
}

TEST(Partitioner, ParseAlgorithmRoundTrip) {
  EXPECT_EQ(parse_algorithm("igmatch"), Algorithm::kIgMatch);
  EXPECT_EQ(parse_algorithm("igmatch-recursive"),
            Algorithm::kIgMatchRecursive);
  EXPECT_EQ(parse_algorithm("igmatch-refined"), Algorithm::kIgMatchRefined);
  EXPECT_EQ(parse_algorithm("igvote"), Algorithm::kIgVote);
  EXPECT_EQ(parse_algorithm("eig1"), Algorithm::kEig1);
  EXPECT_EQ(parse_algorithm("rcut"), Algorithm::kRatioCutFm);
  EXPECT_EQ(parse_algorithm("fm"), Algorithm::kMinCutFm);
  EXPECT_EQ(parse_algorithm("kl"), Algorithm::kKl);
  EXPECT_EQ(parse_algorithm("multilevel"), Algorithm::kMultilevel);
  EXPECT_THROW(parse_algorithm("simulated-annealing"),
               std::invalid_argument);
  EXPECT_STREQ(to_string(Algorithm::kIgMatch), "IG-Match");
  EXPECT_STREQ(to_string(Algorithm::kRatioCutFm), "RCut-FM");
  EXPECT_STREQ(to_string(Algorithm::kMultilevel), "Multilevel");
}

TEST(Partitioner, AllAlgorithmsProduceConsistentResults) {
  const Hypergraph h = test_circuit();
  for (const Algorithm a :
       {Algorithm::kIgMatch, Algorithm::kIgMatchRecursive,
        Algorithm::kIgMatchRefined, Algorithm::kIgVote, Algorithm::kEig1,
        Algorithm::kRatioCutFm, Algorithm::kMinCutFm, Algorithm::kKl,
        Algorithm::kMultilevel}) {
    PartitionerConfig config;
    config.algorithm = a;
    config.fm.num_starts = 2;
    const PartitionResult r = run_partitioner(h, config);
    EXPECT_EQ(r.algorithm_name, to_string(a));
    EXPECT_TRUE(r.partition.is_proper()) << r.algorithm_name;
    EXPECT_EQ(r.nets_cut, net_cut(h, r.partition)) << r.algorithm_name;
    EXPECT_DOUBLE_EQ(r.ratio, ratio_cut(h, r.partition)) << r.algorithm_name;
    EXPECT_EQ(r.left_size + r.right_size, h.num_modules());
    EXPECT_GE(r.runtime_ms, 0.0);
  }
}

TEST(Partitioner, SpectralDiagnosticsFilled) {
  const Hypergraph h = test_circuit();
  PartitionerConfig config;
  config.algorithm = Algorithm::kIgMatch;
  const PartitionResult r = run_partitioner(h, config);
  ASSERT_TRUE(r.eigen_converged.has_value());
  EXPECT_TRUE(*r.eigen_converged);
  ASSERT_TRUE(r.lambda2.has_value());
  EXPECT_GT(*r.lambda2, 0.0);  // connected circuit
  EXPECT_GE(r.matching_bound, r.nets_cut);
}

TEST(Partitioner, SpectralDiagnosticsEmptyForCombinatorialAlgorithms) {
  const Hypergraph h = test_circuit();
  for (const Algorithm a : {Algorithm::kRatioCutFm, Algorithm::kMinCutFm,
                            Algorithm::kKl}) {
    PartitionerConfig config;
    config.algorithm = a;
    config.fm.num_starts = 2;
    const PartitionResult r = run_partitioner(h, config);
    EXPECT_FALSE(r.lambda2.has_value()) << r.algorithm_name;
    EXPECT_FALSE(r.eigen_converged.has_value()) << r.algorithm_name;
  }
}

TEST(Partitioner, MetricsSnapshotCapturedWhenEnabled) {
  const Hypergraph h = test_circuit();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.reset();
  registry.set_enabled(true);
  PartitionerConfig config;
  config.algorithm = Algorithm::kIgMatch;
  const PartitionResult r = run_partitioner(h, config);
  registry.set_enabled(false);
  registry.reset();
#if NETPART_OBS_ENABLED
  EXPECT_FALSE(r.metrics.empty());
  EXPECT_EQ(r.metrics.counter("igmatch.runs"), 1);
  ASSERT_FALSE(r.metrics.spans.empty());
  EXPECT_EQ(r.metrics.spans.front().name, "run-partitioner");
  EXPECT_GT(r.metrics.spans.front().wall_ms, 0.0);
#else
  // Macros compiled out: the registry records nothing from the library,
  // but the run-level gauges set directly in run_partitioner remain.
  EXPECT_TRUE(r.metrics.spans.empty());
  EXPECT_EQ(r.metrics.counter("igmatch.runs"), 0);
#endif
}

TEST(Partitioner, RefinedNeverWorseThanPlainIgMatch) {
  const Hypergraph h = test_circuit();
  PartitionerConfig plain;
  plain.algorithm = Algorithm::kIgMatch;
  PartitionerConfig refined;
  refined.algorithm = Algorithm::kIgMatchRefined;
  const PartitionResult a = run_partitioner(h, plain);
  const PartitionResult b = run_partitioner(h, refined);
  EXPECT_LE(b.ratio, a.ratio + 1e-12);
}

TEST(Partitioner, ThresholdOptionIsHonoured) {
  const Hypergraph h = test_circuit();
  PartitionerConfig config;
  config.algorithm = Algorithm::kIgMatch;
  config.threshold_net_size = 8;
  const PartitionResult r = run_partitioner(h, config);
  EXPECT_TRUE(r.partition.is_proper());
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
}

TEST(Partitioner, DeterministicAcrossRuns) {
  const Hypergraph h = test_circuit();
  PartitionerConfig config;
  config.algorithm = Algorithm::kIgMatch;
  const PartitionResult a = run_partitioner(h, config);
  const PartitionResult b = run_partitioner(h, config);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.nets_cut, b.nets_cut);
}

}  // namespace
}  // namespace netpart
