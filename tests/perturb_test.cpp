#include "circuits/perturb.hpp"

#include <gtest/gtest.h>

#include "circuits/generator.hpp"
#include "hypergraph/stats.hpp"

namespace netpart {
namespace {

Hypergraph base_circuit() {
  GeneratorConfig c;
  c.name = "perturb-base";
  c.num_modules = 200;
  c.num_nets = 230;
  c.leaf_max = 16;
  return generate_circuit(c).hypergraph;
}

TEST(Perturb, ZeroFractionIsIdentity) {
  const Hypergraph h = base_circuit();
  const Hypergraph copy = rewire_pins(h, 0.0, 1);
  EXPECT_DOUBLE_EQ(pin_difference_fraction(h, copy), 0.0);
}

TEST(Perturb, FractionScalesDamage) {
  const Hypergraph h = base_circuit();
  const Hypergraph light = rewire_pins(h, 0.05, 7);
  const Hypergraph heavy = rewire_pins(h, 0.60, 7);
  const double light_diff = pin_difference_fraction(h, light);
  const double heavy_diff = pin_difference_fraction(h, heavy);
  EXPECT_GT(light_diff, 0.0);
  EXPECT_GT(heavy_diff, light_diff * 3.0);
  // Rewiring p of pins changes at most ~2p of the symmetric difference.
  EXPECT_LT(light_diff, 0.15);
}

TEST(Perturb, DeterministicForSeed) {
  const Hypergraph h = base_circuit();
  const Hypergraph a = rewire_pins(h, 0.3, 42);
  const Hypergraph b = rewire_pins(h, 0.3, 42);
  EXPECT_DOUBLE_EQ(pin_difference_fraction(a, b), 0.0);
  const Hypergraph c = rewire_pins(h, 0.3, 43);
  EXPECT_GT(pin_difference_fraction(a, c), 0.0);
}

TEST(Perturb, PreservesShapeCounts) {
  const Hypergraph h = base_circuit();
  const Hypergraph noisy = rewire_pins(h, 0.5, 5);
  EXPECT_EQ(noisy.num_modules(), h.num_modules());
  EXPECT_EQ(noisy.num_nets(), h.num_nets());
  // Nets never grow (duplicates can shrink them).
  for (NetId n = 0; n < h.num_nets(); ++n)
    EXPECT_LE(noisy.net_size(n), h.net_size(n));
}

TEST(Perturb, RejectsBadFraction) {
  const Hypergraph h = base_circuit();
  EXPECT_THROW(rewire_pins(h, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(rewire_pins(h, 1.1, 1), std::invalid_argument);
}

TEST(PinDifference, RejectsShapeMismatch) {
  HypergraphBuilder a(2);
  a.add_net({0, 1});
  HypergraphBuilder b(3);
  b.add_net({0, 1});
  EXPECT_THROW(pin_difference_fraction(a.build(), b.build()),
               std::invalid_argument);
}

TEST(PinDifference, HandComputed) {
  HypergraphBuilder a(4);
  a.add_net({0, 1});
  HypergraphBuilder b(4);
  b.add_net({0, 2});
  // Symmetric difference {1, 2} = 2 of 4 total pins.
  EXPECT_DOUBLE_EQ(pin_difference_fraction(a.build(), b.build()), 0.5);
}

}  // namespace
}  // namespace netpart
