#include "circuits/pin_distribution.hpp"

#include <gtest/gtest.h>

#include <map>

namespace netpart {
namespace {

TEST(PinDistribution, ConstantAlwaysSamplesK) {
  const PinDistribution d = PinDistribution::constant(5);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 5);
  EXPECT_EQ(d.max_size(), 5);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(PinDistribution, RejectsEmpty) {
  EXPECT_THROW(PinDistribution({}), std::invalid_argument);
}

TEST(PinDistribution, RejectsSizeBelowTwo) {
  EXPECT_THROW(PinDistribution({{1, 1.0}}), std::invalid_argument);
}

TEST(PinDistribution, RejectsNonPositiveWeight) {
  EXPECT_THROW(PinDistribution({{2, 0.0}}), std::invalid_argument);
  EXPECT_THROW(PinDistribution({{2, -1.0}}), std::invalid_argument);
}

TEST(PinDistribution, SamplesFollowWeights) {
  // 2-pin nets three times as likely as 4-pin nets.
  const PinDistribution d({{2, 3.0}, {4, 1.0}});
  Xoshiro256 rng(42);
  std::map<std::int32_t, int> counts;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[d.sample(rng)];
  EXPECT_EQ(counts.size(), 2u);
  const double frac2 = static_cast<double>(counts[2]) / trials;
  EXPECT_NEAR(frac2, 0.75, 0.02);
}

TEST(PinDistribution, MeanMatchesWeights) {
  const PinDistribution d({{2, 1.0}, {6, 1.0}});
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
}

TEST(PinDistribution, McncLikeShape) {
  const PinDistribution d = PinDistribution::mcnc_like();
  EXPECT_EQ(d.max_size(), 37);
  // Dominated by 2-pin nets: mean stays small despite the long tail.
  EXPECT_GT(d.mean(), 2.0);
  EXPECT_LT(d.mean(), 5.0);

  Xoshiro256 rng(7);
  int two_pin = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (d.sample(rng) == 2) ++two_pin;
  // Table 1: 1835 of 3029 nets are 2-pin (~60.6%).
  EXPECT_NEAR(static_cast<double>(two_pin) / trials, 0.606, 0.02);
}

TEST(PinDistribution, SampleIsDeterministicGivenRngState) {
  const PinDistribution d = PinDistribution::mcnc_like();
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(d.sample(a), d.sample(b));
}

}  // namespace
}  // namespace netpart
