#include "spectral/placement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.hpp"

namespace netpart {
namespace {

/// Two 2-pin-net cliques with a bridge (modules 0-3 and 4-7).
Hypergraph dumbbell() {
  HypergraphBuilder b(8);
  for (std::int32_t i = 0; i < 4; ++i)
    for (std::int32_t j = i + 1; j < 4; ++j) {
      b.add_net({i, j});
      b.add_net({4 + i, 4 + j});
    }
  b.add_net({3, 4});
  return b.build();
}

TEST(HallPlacement, SeparatesClusters) {
  const PlacementResult p = hall_placement(dumbbell());
  EXPECT_TRUE(p.converged);
  // The x coordinate (Fiedler vector) puts the two cliques on opposite
  // signs.
  for (std::int32_t i = 0; i < 4; ++i)
    for (std::int32_t j = 4; j < 8; ++j)
      EXPECT_LT(p.x[static_cast<std::size_t>(i)] *
                    p.x[static_cast<std::size_t>(j)],
                0.0);
}

TEST(HallPlacement, CoordinatesAreUnitAndOrthogonal) {
  const PlacementResult p = hall_placement(dumbbell());
  EXPECT_NEAR(linalg::norm(p.x), 1.0, 1e-8);
  EXPECT_NEAR(linalg::norm(p.y), 1.0, 1e-8);
  EXPECT_NEAR(linalg::dot(p.x, p.y), 0.0, 1e-7);
  EXPECT_LE(p.lambda2, p.lambda3 + 1e-9);
}

TEST(HallPlacement, FiedlerMinimizesQuadraticWirelength) {
  // Appendix A: among unit vectors orthogonal to ones, the Fiedler vector
  // minimizes z = 1/2 sum (x_i-x_j)^2 A_ij, and z(x) = lambda_2 / ... with
  // our convention z equals x^T Q x = lambda_2.  Any other unit vector
  // orthogonal to ones must score >= lambda_2.
  const Hypergraph h = dumbbell();
  const PlacementResult p = hall_placement(h);
  const double z_fiedler = quadratic_wirelength(h, p.x);
  EXPECT_NEAR(z_fiedler, p.lambda2, 1e-7);

  // A competing unit vector orthogonal to ones: alternating +-.
  std::vector<double> alt(8);
  for (std::size_t i = 0; i < 8; ++i) alt[i] = (i % 2 == 0) ? 1.0 : -1.0;
  linalg::normalize(alt);
  EXPECT_GE(quadratic_wirelength(h, alt), z_fiedler - 1e-9);
  // The y coordinate scores exactly lambda_3.
  EXPECT_NEAR(quadratic_wirelength(h, p.y), p.lambda3, 1e-7);
}

TEST(NetsAsPoints, ModulesAtNetCentroids) {
  const Hypergraph h = dumbbell();
  const PlacementResult p = nets_as_points_placement(h);
  EXPECT_TRUE(p.converged);
  // Same qualitative separation as Hall: the two cliques' modules split by
  // sign of x.
  for (std::int32_t i = 0; i < 4; ++i)
    for (std::int32_t j = 4; j < 8; ++j)
      EXPECT_LT(p.x[static_cast<std::size_t>(i)] *
                    p.x[static_cast<std::size_t>(j)],
                0.0)
          << i << ' ' << j;
}

TEST(NetsAsPoints, IsolatedModuleAtOrigin) {
  HypergraphBuilder b(5);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 3});
  // module 4 is on no net
  const Hypergraph h = b.build();
  const PlacementResult p = nets_as_points_placement(h);
  EXPECT_DOUBLE_EQ(p.x[4], 0.0);
  EXPECT_DOUBLE_EQ(p.y[4], 0.0);
}

TEST(Placement, TinyInstancesSafe) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  const Hypergraph h = b.build();
  const PlacementResult hall = hall_placement(h);
  EXPECT_TRUE(hall.converged);
  const PlacementResult nap = nets_as_points_placement(h);
  EXPECT_TRUE(nap.converged);
}

TEST(QuadraticWirelength, RejectsSizeMismatch) {
  const Hypergraph h = dumbbell();
  EXPECT_THROW(quadratic_wirelength(h, std::vector<double>(3, 0.0)),
               std::invalid_argument);
}

TEST(QuadraticWirelength, HandComputed) {
  // Single 2-pin net: z = (x0-x1)^2 * 1.
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  EXPECT_DOUBLE_EQ(quadratic_wirelength(b.build(), {1.0, -1.0}), 4.0);
}

}  // namespace
}  // namespace netpart
