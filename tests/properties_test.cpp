/// Cross-module property tests: randomized instances checked against
/// brute-force oracles and against the paper's theorems.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "circuits/generator.hpp"
#include "circuits/rng.hpp"
#include "core/partitioner.hpp"
#include "graph/clique_model.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "io/netlist_io.hpp"
#include "linalg/fiedler.hpp"
#include "spectral/eig1.hpp"

#include <sstream>

namespace netpart {
namespace {

/// Random small hypergraph with only 2-pin nets (graph case), connected by
/// construction via a spanning path.
Hypergraph random_graph_netlist(std::int32_t n, std::int32_t extra_nets,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  HypergraphBuilder b(n);
  for (std::int32_t i = 0; i + 1 < n; ++i) b.add_net({i, i + 1});
  for (std::int32_t e = 0; e < extra_nets; ++e) {
    const auto u = static_cast<ModuleId>(rng.below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<ModuleId>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    b.add_net({u, v});
  }
  return b.build();
}

/// Exhaustive optimal ratio cut over all 2^(n-1) proper bipartitions.
double brute_force_optimal_ratio(const Hypergraph& h) {
  const std::int32_t n = h.num_modules();
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 1; mask + 1 < (1u << (n - 1)) * 2; ++mask) {
    Partition p(n);
    for (std::int32_t m = 0; m < n; ++m)
      if ((mask >> m) & 1u) p.assign(m, Side::kRight);
    if (!p.is_proper()) continue;
    best = std::min(best, ratio_cut(h, p));
  }
  return best;
}

class SmallInstanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallInstanceTest, HeuristicsNeverBeatBruteForce) {
  const std::uint64_t seed = GetParam();
  const Hypergraph h = random_graph_netlist(9, 8, seed);
  const double optimal = brute_force_optimal_ratio(h);
  for (const Algorithm a :
       {Algorithm::kIgMatch, Algorithm::kIgVote, Algorithm::kEig1,
        Algorithm::kRatioCutFm}) {
    PartitionerConfig config;
    config.algorithm = a;
    config.fm.num_starts = 3;
    const PartitionResult r = run_partitioner(h, config);
    EXPECT_GE(r.ratio, optimal - 1e-12) << to_string(a) << " seed " << seed;
  }
}

TEST_P(SmallInstanceTest, Theorem1LowerBoundOnGraphNetlists) {
  // For 2-pin-net netlists the hypergraph net cut equals the clique-model
  // weighted edge cut, so Theorem 1 (c >= lambda_2 / n) applies verbatim
  // to the brute-force optimum.
  const std::uint64_t seed = GetParam();
  const Hypergraph h = random_graph_netlist(9, 6, seed);
  const double optimal = brute_force_optimal_ratio(h);
  const WeightedGraph g = clique_expansion(h);
  const linalg::FiedlerResult f = linalg::fiedler_pair(g.laplacian());
  ASSERT_TRUE(f.converged);
  EXPECT_LE(f.lambda2 / h.num_modules(), optimal + 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallInstanceTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

/// Whole-pipeline invariants on generated circuits of several sizes.
struct CircuitParam {
  std::int32_t modules;
  std::int32_t nets;
  const char* name;
};

class GeneratedCircuitTest : public ::testing::TestWithParam<CircuitParam> {};

TEST_P(GeneratedCircuitTest, AllAlgorithmsReportTruthfully) {
  const CircuitParam param = GetParam();
  GeneratorConfig c;
  c.name = param.name;
  c.num_modules = param.modules;
  c.num_nets = param.nets;
  c.leaf_max = 16;
  const Hypergraph h = generate_circuit(c).hypergraph;
  for (const Algorithm a : {Algorithm::kIgMatch, Algorithm::kIgVote,
                            Algorithm::kEig1, Algorithm::kRatioCutFm}) {
    PartitionerConfig config;
    config.algorithm = a;
    config.fm.num_starts = 2;
    const PartitionResult r = run_partitioner(h, config);
    ASSERT_TRUE(r.partition.is_proper()) << to_string(a);
    ASSERT_EQ(r.nets_cut, net_cut(h, r.partition)) << to_string(a);
    // Cut is invariant under swapping side labels.
    Partition swapped = r.partition;
    for (ModuleId m = 0; m < h.num_modules(); ++m) swapped.flip(m);
    ASSERT_EQ(net_cut(h, swapped), r.nets_cut) << to_string(a);
  }
}

TEST_P(GeneratedCircuitTest, HgrRoundTripPreservesCutValues) {
  const CircuitParam param = GetParam();
  GeneratorConfig c;
  c.name = param.name;
  c.num_modules = param.modules;
  c.num_nets = param.nets;
  c.leaf_max = 16;
  const Hypergraph h = generate_circuit(c).hypergraph;
  std::stringstream buffer;
  io::write_hgr(buffer, h);
  const Hypergraph parsed = io::read_hgr(buffer);
  const Partition p = random_balanced_partition(h.num_modules(), 5);
  EXPECT_EQ(net_cut(h, p), net_cut(parsed, p));
}

TEST_P(GeneratedCircuitTest, IncrementalCutAgreesOnRandomWalk) {
  const CircuitParam param = GetParam();
  GeneratorConfig c;
  c.name = param.name;
  c.num_modules = param.modules;
  c.num_nets = param.nets;
  c.leaf_max = 16;
  const Hypergraph h = generate_circuit(c).hypergraph;
  Xoshiro256 rng(1234);
  IncrementalCut tracker(h, random_balanced_partition(h.num_modules(), 9));
  for (int step = 0; step < 200; ++step) {
    const auto m = static_cast<ModuleId>(
        rng.below(static_cast<std::uint64_t>(h.num_modules())));
    tracker.flip(m);
    if (step % 50 == 49)
      ASSERT_EQ(tracker.cut(), net_cut(h, tracker.partition())) << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratedCircuitTest,
    ::testing::Values(CircuitParam{60, 80, "prop-tiny"},
                      CircuitParam{150, 170, "prop-small"},
                      CircuitParam{400, 440, "prop-medium"}));

TEST(SpectralQuality, IgMatchGoodOnClusteredCircuits) {
  // On a strongly clustered circuit, the spectral IG pipeline must find a
  // partition close to the generator's ground-truth hierarchy: its ratio
  // cut should be dramatically better than a random balanced cut.
  GeneratorConfig c;
  c.name = "prop-clustered";
  c.num_modules = 300;
  c.num_nets = 330;
  c.leaf_max = 20;
  c.descend_probability = 0.9;
  const Hypergraph h = generate_circuit(c).hypergraph;
  PartitionerConfig config;
  config.algorithm = Algorithm::kIgMatch;
  const PartitionResult r = run_partitioner(h, config);
  const double random_ratio =
      ratio_cut(h, random_balanced_partition(h.num_modules(), 77));
  EXPECT_LT(r.ratio, random_ratio / 4.0);
}

}  // namespace
}  // namespace netpart
