#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.hpp"

namespace netpart::linalg {
namespace {

TEST(ThinQr, OrthonormalizesIndependentColumns) {
  ColumnBlock x{{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}};
  const ThinQr qr = thin_qr(x);
  EXPECT_EQ(qr.rank, 2);
  EXPECT_NEAR(norm(qr.q[0]), 1.0, 1e-14);
  EXPECT_NEAR(norm(qr.q[1]), 1.0, 1e-14);
  EXPECT_NEAR(dot(qr.q[0], qr.q[1]), 0.0, 1e-14);
}

TEST(ThinQr, ReconstructsInput) {
  // X = Q R: verify column-wise reconstruction.
  const ColumnBlock x{{3.0, 4.0, 0.0}, {1.0, 2.0, 2.0}, {0.5, -1.0, 4.0}};
  const ThinQr qr = thin_qr(x);
  const std::int32_t b = 3;
  for (std::int32_t j = 0; j < b; ++j) {
    std::vector<double> rebuilt(3, 0.0);
    for (std::int32_t i = 0; i <= j; ++i)
      axpy(qr.r[static_cast<std::size_t>(i * b + j)],
           qr.q[static_cast<std::size_t>(i)], rebuilt);
    for (std::size_t row = 0; row < 3; ++row)
      EXPECT_NEAR(rebuilt[row], x[static_cast<std::size_t>(j)][row], 1e-12)
          << "col " << j << " row " << row;
  }
}

TEST(ThinQr, RUpperTriangularWithPositiveDiagonal) {
  const ColumnBlock x{{2.0, 0.0}, {1.0, 1.0}};
  const ThinQr qr = thin_qr(x);
  EXPECT_GT(qr.r[0], 0.0);
  EXPECT_GT(qr.r[3], 0.0);
  EXPECT_DOUBLE_EQ(qr.r[2], 0.0);  // below-diagonal entry
}

TEST(ThinQr, DetectsDependentColumn) {
  ColumnBlock x{{1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}};  // col2 = 2 * col1
  const ThinQr qr = thin_qr(x);
  EXPECT_EQ(qr.rank, 1);
  // The dependent column became a zero column with zero pivot.
  EXPECT_DOUBLE_EQ(qr.r[3], 0.0);
  EXPECT_NEAR(norm(qr.q[1]), 0.0, 1e-14);
}

TEST(ThinQr, RejectsBadInput) {
  EXPECT_THROW(thin_qr({}), std::invalid_argument);
  EXPECT_THROW(thin_qr({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

TEST(BlockTimesSmall, HandComputed) {
  const ColumnBlock block{{1.0, 0.0}, {0.0, 1.0}};
  // m = [[1, 2], [3, 4]] row-major: out0 = 1*b0 + 3*b1, out1 = 2*b0 + 4*b1.
  const std::vector<double> m{1.0, 2.0, 3.0, 4.0};
  const ColumnBlock out = block_times_small(block, m, 2, 2);
  EXPECT_DOUBLE_EQ(out[0][0], 1.0);
  EXPECT_DOUBLE_EQ(out[0][1], 3.0);
  EXPECT_DOUBLE_EQ(out[1][0], 2.0);
  EXPECT_DOUBLE_EQ(out[1][1], 4.0);
}

TEST(BlockTimesSmall, RejectsMismatch) {
  const ColumnBlock block{{1.0}, {2.0}};
  EXPECT_THROW(block_times_small(block, {1.0}, 2, 2),
               std::invalid_argument);
  EXPECT_THROW(block_times_small(block, {1.0, 2.0}, 1, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace netpart::linalg
