/// Property tests for the incremental repartitioning subsystem.
///
/// Oracle 1 (exact): after ANY edit script, the incrementally maintained
/// intersection graph must equal the from-scratch `intersection_graph()`
/// build on the materialized hypergraph EXACTLY — same CSR layout, same
/// neighbor ids, same IEEE-754 weight bits — and the materialized
/// hypergraph must equal an independently maintained shadow netlist.
///
/// Oracle 2 (exact): a session with warm_start disabled runs the identical
/// cold pipeline, so its partitions must be bit-identical to
/// `igmatch_partition()` on the materialized hypergraph.
///
/// Oracle 3 (tolerance): a warm session (cached Fiedler vector, masked
/// sweep) must stay within solver tolerance of the cold ratio cut — the
/// masked sweep is a subset of the full sweep, but the previous-partition
/// candidate and the perturbed-region mask keep it competitive.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/generator.hpp"
#include "circuits/rng.hpp"
#include "cluster/multilevel.hpp"
#include "graph/intersection_graph.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "igmatch/igmatch.hpp"
#include "repart/edit_script.hpp"
#include "repart/session.hpp"

namespace netpart::repart {
namespace {

Hypergraph small_circuit(std::uint64_t seed) {
  GeneratorConfig config;
  config.name = "repart-prop-" + std::to_string(seed);
  config.num_modules = 80 + static_cast<std::int32_t>(seed % 7) * 25;
  config.num_nets = config.num_modules + config.num_modules / 5 + 10;
  return generate_circuit(config).hypergraph;
}

/// Independent mutable netlist model: plain vector ops, no journaling, no
/// sharing of code with EditableNetlist beyond the Hypergraph builder.
struct ShadowNetlist {
  std::int32_t modules = 0;
  std::vector<std::vector<ModuleId>> pins;
  std::vector<std::int32_t> weights;

  explicit ShadowNetlist(const Hypergraph& h) : modules(h.num_modules()) {
    for (NetId n = 0; n < h.num_nets(); ++n) {
      const auto p = h.pins(n);
      pins.emplace_back(p.begin(), p.end());
      weights.push_back(h.net_weight(n));
    }
  }

  void add_net(std::vector<ModuleId> p, std::int32_t w) {
    std::sort(p.begin(), p.end());
    p.erase(std::unique(p.begin(), p.end()), p.end());
    pins.push_back(std::move(p));
    weights.push_back(w);
  }
  void remove_net(std::int32_t n) {
    pins.erase(pins.begin() + n);
    weights.erase(weights.begin() + n);
  }
  void remove_module(ModuleId m) {
    for (auto& p : pins) {
      std::erase(p, m);
      for (ModuleId& k : p)
        if (k > m) --k;
    }
    --modules;
  }
  void move_pin(std::int32_t n, ModuleId from, ModuleId to) {
    auto& p = pins[static_cast<std::size_t>(n)];
    std::erase(p, from);
    if (std::find(p.begin(), p.end(), to) == p.end()) {
      p.push_back(to);
      std::sort(p.begin(), p.end());
    }
  }

  [[nodiscard]] Hypergraph build() const {
    HypergraphBuilder builder(modules);
    for (std::size_t n = 0; n < pins.size(); ++n)
      builder.add_net(pins[n], weights[n]);
    return builder.build();
  }
};

/// One random edit applied identically to the session's netlist and the
/// shadow model.
void random_edit(Xoshiro256& rng, EditableNetlist& editor,
                 ShadowNetlist& shadow) {
  const std::int32_t m = editor.num_nets();
  const std::int32_t n = editor.num_modules();
  switch (rng.below(8)) {
    case 0: {  // add a net (with duplicate pins, exercising the dedup)
      std::vector<ModuleId> p;
      const auto size = static_cast<std::int32_t>(rng.range(2, 6));
      for (std::int32_t i = 0; i < size; ++i)
        p.push_back(
            static_cast<ModuleId>(rng.below(static_cast<std::uint64_t>(n))));
      const auto w = static_cast<std::int32_t>(rng.range(1, 3));
      editor.add_net(p, w);
      shadow.add_net(p, w);
      break;
    }
    case 1: {  // remove a net
      if (m <= 4) break;
      const auto net =
          static_cast<NetId>(rng.below(static_cast<std::uint64_t>(m)));
      editor.remove_net(net);
      shadow.remove_net(net);
      break;
    }
    case 2: {  // add a module and wire it in so it is not an isolated row
      const ModuleId fresh = editor.add_module();
      ++shadow.modules;
      std::vector<ModuleId> p{fresh,
                              static_cast<ModuleId>(rng.below(
                                  static_cast<std::uint64_t>(n)))};
      editor.add_net(p, 1);
      shadow.add_net(p, 1);
      break;
    }
    case 3: {  // remove a module
      if (n <= 16) break;
      const auto mod =
          static_cast<ModuleId>(rng.below(static_cast<std::uint64_t>(n)));
      editor.remove_module(mod);
      shadow.remove_module(mod);
      break;
    }
    default: {  // move a pin (the common ECO)
      for (std::int32_t attempt = 0; attempt < 20; ++attempt) {
        const auto net =
            static_cast<NetId>(rng.below(static_cast<std::uint64_t>(m)));
        const auto p = editor.pins(net);
        if (p.size() < 2) continue;
        const ModuleId from =
            p[static_cast<std::size_t>(rng.below(p.size()))];
        const auto to =
            static_cast<ModuleId>(rng.below(static_cast<std::uint64_t>(n)));
        if (to != from) {
          editor.move_pin(net, from, to);
          shadow.move_pin(net, from, to);
        }
        break;
      }
      break;
    }
  }
}

void expect_hypergraphs_equal(const Hypergraph& got, const Hypergraph& want) {
  ASSERT_EQ(got.num_modules(), want.num_modules());
  ASSERT_EQ(got.num_nets(), want.num_nets());
  for (NetId n = 0; n < got.num_nets(); ++n) {
    ASSERT_EQ(got.net_weight(n), want.net_weight(n)) << "net " << n;
    const auto gp = got.pins(n);
    const auto wp = want.pins(n);
    ASSERT_EQ(gp.size(), wp.size()) << "net " << n;
    for (std::size_t i = 0; i < gp.size(); ++i)
      ASSERT_EQ(gp[i], wp[i]) << "net " << n << " pin " << i;
  }
}

/// Exact equality — including the IEEE bit patterns of the weights (== on
/// positive finite doubles is bit equality).
void expect_igs_identical(const WeightedGraph& got, const WeightedGraph& want) {
  ASSERT_EQ(got.num_vertices(), want.num_vertices());
  for (std::int32_t v = 0; v < got.num_vertices(); ++v) {
    const auto gn = got.neighbors(v);
    const auto wn = want.neighbors(v);
    const auto gw = got.weights(v);
    const auto ww = want.weights(v);
    ASSERT_EQ(gn.size(), wn.size()) << "row " << v;
    for (std::size_t i = 0; i < gn.size(); ++i) {
      ASSERT_EQ(gn[i], wn[i]) << "row " << v << " entry " << i;
      ASSERT_EQ(gw[i], ww[i]) << "row " << v << " entry " << i
                              << " (weights differ in bits)";
    }
  }
}

constexpr IgWeighting kWeightings[] = {IgWeighting::kPaper,
                                       IgWeighting::kUniform,
                                       IgWeighting::kOverlap,
                                       IgWeighting::kJaccard};

// ~200 random edit scripts: 52 scripts x 4 weightings, 3 batches each.
TEST(RepartPropertyTest, IncrementalIgMatchesFromScratchOnRandomEditScripts) {
  std::int32_t scripts = 0;
  for (std::uint64_t seed = 0; seed < 52; ++seed) {
    const Hypergraph h = small_circuit(seed);
    const IgWeighting weighting = kWeightings[seed % 4];
    RepartitionOptions options;
    options.weighting = weighting;
    RepartitionSession session(h, options);
    ShadowNetlist shadow(h);
    Xoshiro256 rng(seed * 7919 + 17);
    (void)session.repartition();
    for (std::int32_t batch = 0; batch < 3; ++batch) {
      const auto edits = static_cast<std::int32_t>(rng.range(1, 8));
      for (std::int32_t e = 0; e < edits; ++e)
        random_edit(rng, session.netlist(), shadow);
      (void)session.repartition();
      const Hypergraph want_h = shadow.build();
      expect_hypergraphs_equal(session.hypergraph(), want_h);
      expect_igs_identical(session.intersection_graph(),
                           intersection_graph(want_h, weighting));
      if (::testing::Test::HasFatalFailure()) {
        ADD_FAILURE() << "script seed " << seed << " batch " << batch;
        return;
      }
    }
    ++scripts;
  }
  EXPECT_EQ(scripts, 52);
}

// Cold-mode sessions run the identical pipeline (full sweep, random-start
// Lanczos, incremental IG) — results must be bit-identical to the
// from-scratch igmatch_partition.
TEST(RepartPropertyTest, ColdSessionBitIdenticalToScratchPipeline) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const Hypergraph h = small_circuit(seed);
    RepartitionOptions options;
    options.warm_start = false;
    RepartitionSession session(h, options);
    ShadowNetlist shadow(h);
    Xoshiro256 rng(seed * 104729 + 5);
    for (std::int32_t batch = 0; batch < 3; ++batch) {
      const auto edits = static_cast<std::int32_t>(rng.range(1, 6));
      for (std::int32_t e = 0; e < edits; ++e)
        random_edit(rng, session.netlist(), shadow);
      const RepartitionResult got = session.repartition();
      const IgMatchResult want = igmatch_partition(session.hypergraph());
      ASSERT_EQ(got.nets_cut, want.nets_cut) << "seed " << seed;
      ASSERT_EQ(got.ratio, want.ratio) << "seed " << seed;
      ASSERT_EQ(got.lambda2, want.lambda2) << "seed " << seed;
      ASSERT_EQ(got.partition.num_modules(), want.partition.num_modules());
      for (ModuleId m = 0; m < got.partition.num_modules(); ++m)
        ASSERT_EQ(got.partition.side(m), want.partition.side(m))
            << "seed " << seed << " module " << m;
      ASSERT_FALSE(got.warm_started);
    }
  }
}

// Warm sessions (cache + mask + previous-partition guard) must stay within
// solver tolerance of the cold pipeline's cut quality.
TEST(RepartPropertyTest, WarmSessionWithinToleranceOfCold) {
  std::int32_t warm_wins = 0, cold_wins = 0;
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    const Hypergraph h = small_circuit(seed);
    RepartitionSession session(h);
    ShadowNetlist shadow(h);
    Xoshiro256 rng(seed * 65537 + 3);
    (void)session.repartition();
    for (std::int32_t batch = 0; batch < 3; ++batch) {
      const auto edits = static_cast<std::int32_t>(rng.range(1, 5));
      for (std::int32_t e = 0; e < edits; ++e)
        random_edit(rng, session.netlist(), shadow);
      const RepartitionResult warm = session.repartition();
      EXPECT_TRUE(warm.warm_started) << "seed " << seed;
      const IgMatchResult cold = igmatch_partition(session.hypergraph());
      ASSERT_TRUE(warm.partition.is_proper()) << "seed " << seed;
      // Verify the reported metrics against the partition itself.
      const std::int32_t check_cut = net_cut(session.hypergraph(),
                                             warm.partition);
      ASSERT_EQ(check_cut, warm.nets_cut) << "seed " << seed;
      EXPECT_LE(warm.ratio, cold.ratio * 1.15 + 1e-9)
          << "seed " << seed << " batch " << batch;
      if (warm.ratio < cold.ratio) ++warm_wins;
      if (warm.ratio > cold.ratio) ++cold_wins;
    }
  }
  // The tolerance must not be doing all the work: warm matches or beats
  // cold in the overwhelming majority of batches.
  EXPECT_LE(cold_wins, 20) << "warm wins: " << warm_wins;
}

// Multilevel warm start: with the V-cycle threshold forced down to 1
// module, every repartition takes the multilevel path — the cold run
// through multilevel_partition, warm runs through partition-constrained
// V-cycle refinement of the remapped previous answer.  Over a long ECO
// trace the warm path must hold its own against a cold V-cycle re-solve
// of each epoch: at least as many wins as losses, and a final answer
// within 2% of cold.
TEST(RepartPropertyTest, MultilevelWarmStartTracksColdVcycleOverEcoTrace) {
  GeneratorConfig config;
  config.name = "repart-vcycle-trace";
  // Dense enough that the optimum cut is nonzero — at generator default
  // density the best split cuts nothing and every comparison ties.
  config.num_modules = 400;
  config.num_nets = 1000;
  const Hypergraph h = generate_circuit(config).hypergraph;

  RepartitionOptions options;
  options.vcycle_threshold = 1;         // every run takes the V-cycle path
  options.vcycle.direct_pair_budget = 0;  // force real hierarchies
  options.vcycle.coarsen_to = 64;
  options.vcycle.vcycles = 1;
  RepartitionSession session(h, options);
  ShadowNetlist shadow(h);
  Xoshiro256 rng(424243);

  const RepartitionResult first = session.repartition();
  ASSERT_TRUE(first.used_vcycle);
  ASSERT_FALSE(first.warm_started);
  ASSERT_TRUE(first.partition.is_proper());

  std::int32_t warm_wins = 0, cold_wins = 0, warm_batches = 0;
  double final_warm = 0.0, final_cold = 0.0;
  for (std::int32_t batch = 0; batch < 20; ++batch) {
    const auto edits = static_cast<std::int32_t>(rng.range(1, 5));
    for (std::int32_t e = 0; e < edits; ++e)
      random_edit(rng, session.netlist(), shadow);
    const RepartitionResult warm = session.repartition();
    ASSERT_TRUE(warm.used_vcycle) << "batch " << batch;
    ASSERT_TRUE(warm.partition.is_proper()) << "batch " << batch;
    warm_batches += warm.warm_started ? 1 : 0;
    // Reported metrics must describe the returned partition.
    ASSERT_EQ(net_cut(session.hypergraph(), warm.partition), warm.nets_cut)
        << "batch " << batch;
    const MultilevelResult cold =
        multilevel_partition(session.hypergraph(), options.vcycle);
    if (warm.ratio < cold.ratio) ++warm_wins;
    if (warm.ratio > cold.ratio) ++cold_wins;
    final_warm = warm.ratio;
    final_cold = cold.ratio;
  }
  // The trace must genuinely exercise the warm path, the warm path must
  // not lose to cold overall, and it must land within 2% at the end.
  EXPECT_GE(warm_batches, 15);
  EXPECT_GE(warm_wins, cold_wins);
  EXPECT_LE(final_warm, final_cold * 1.02 + 1e-12)
      << "warm drifted beyond 2% of a cold V-cycle re-solve";
}

TEST(RepartPropertyTest, EditApiValidation) {
  HypergraphBuilder builder(4);
  builder.add_net({0, 1});
  builder.add_net({1, 2, 3});
  builder.add_net({0, 3});
  const Hypergraph h = builder.build();
  EditableNetlist editor(h);

  EXPECT_THROW(editor.remove_net(3), std::out_of_range);
  EXPECT_THROW(editor.remove_net(-1), std::out_of_range);
  EXPECT_THROW(editor.remove_module(4), std::out_of_range);
  EXPECT_THROW(editor.add_net(std::vector<ModuleId>{0, 7}),
               std::out_of_range);
  EXPECT_THROW(editor.add_net(std::vector<ModuleId>{0, 1}, 0),
               std::invalid_argument);
  EXPECT_THROW(editor.move_pin(0, 2, 3), std::invalid_argument);  // not a pin
  EXPECT_THROW(editor.move_pin(0, 0, 9), std::out_of_range);

  // Pin-merge semantics: moving 0 onto 1 in net {0,1} shrinks it.
  editor.move_pin(0, 0, 1);
  EXPECT_EQ(editor.pins(0).size(), 1u);

  // Module removal strips pins and shifts ids.
  editor.remove_module(1);
  EXPECT_EQ(editor.num_modules(), 3);
  // Former net {1,2,3} is now {1,2}.
  ASSERT_EQ(editor.pins(1).size(), 2u);
  EXPECT_EQ(editor.pins(1)[0], 1);
  EXPECT_EQ(editor.pins(1)[1], 2);

  const ChangeSet changes = editor.drain_changes();
  EXPECT_EQ(changes.prev_num_nets, 3);
  EXPECT_EQ(changes.prev_num_modules, 4);
  ASSERT_EQ(changes.module_remap.size(), 4u);
  EXPECT_EQ(changes.module_remap[0], 0);
  EXPECT_EQ(changes.module_remap[1], -1);
  EXPECT_EQ(changes.module_remap[2], 1);
  EXPECT_EQ(changes.module_remap[3], 2);
  EXPECT_TRUE(editor.drain_changes().empty());  // baseline was reset
}

TEST(RepartPropertyTest, EditScriptParsesAndApplies) {
  HypergraphBuilder builder(5);
  builder.add_net({0, 1});
  builder.add_net({1, 2});
  builder.add_net({3, 4});
  const Hypergraph h = builder.build();
  EditableNetlist editor(h);
  EditScriptApplier applier(editor);

  std::istringstream in(
      "# a comment\n"
      "add-module\n"
      "add-net fresh 0 5  # new module is id 5\n"
      "remove-net n1\n"
      "commit\n"
      "move-pin n2 4 2\n"  // n2 = {3,4} (names track original ids)
      "commit\n");
  const EditScript script = read_edit_script(in);
  ASSERT_EQ(script.batches.size(), 2u);
  applier.apply(script.batches[0]);
  EXPECT_EQ(editor.num_modules(), 6);
  EXPECT_EQ(editor.num_nets(), 3);  // 3 - 1 removed + 1 added
  applier.apply(script.batches[1]);
  // n2 was {3,4}; after removing n1, it shifted to id 1; 4 -> 2.
  ASSERT_EQ(editor.pins(1).size(), 2u);
  EXPECT_EQ(editor.pins(1)[0], 2);
  EXPECT_EQ(editor.pins(1)[1], 3);

  // Semantic failures: unknown / duplicate names.
  EditBatch bad;
  EditOp op;
  op.kind = EditOpKind::kRemoveNet;
  op.net_name = "nope";
  bad.push_back(op);
  EXPECT_THROW(applier.apply(bad), std::invalid_argument);
  bad.clear();
  op.kind = EditOpKind::kAddNet;
  op.net_name = "fresh";  // already registered above
  op.pins = {0, 1};
  bad.push_back(op);
  EXPECT_THROW(applier.apply(bad), std::invalid_argument);
}

TEST(RepartPropertyTest, SessionSurvivesDegenerateNetlists) {
  // Two 2-net clusters joined by a bridge: the natural split {0,1}|{2,3}
  // cuts only the bridge, so a proper completion exists.
  HypergraphBuilder builder(4);
  builder.add_net({0, 1});
  builder.add_net({0, 1});
  builder.add_net({2, 3});
  builder.add_net({2, 3});
  builder.add_net({1, 2});
  const Hypergraph h = builder.build();
  RepartitionSession session(h);
  ASSERT_TRUE(session.repartition().partition.is_proper());

  // Shrink below the 2-net floor: trivial improper result, no crash.
  while (session.netlist().num_nets() > 1) session.netlist().remove_net(0);
  const RepartitionResult r = session.repartition();
  EXPECT_EQ(r.nets_cut, 0);
  EXPECT_FALSE(r.partition.is_proper());
  EXPECT_TRUE(std::isinf(r.ratio));

  // And grow back: the session recovers with a cold run.
  session.netlist().add_net(std::vector<ModuleId>{0, 1});
  session.netlist().add_net(std::vector<ModuleId>{2, 3});
  session.netlist().add_net(std::vector<ModuleId>{1, 2});
  const RepartitionResult back = session.repartition();
  EXPECT_FALSE(back.warm_started);
  EXPECT_TRUE(back.partition.is_proper());
}

}  // namespace
}  // namespace netpart::repart
