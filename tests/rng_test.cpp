#include "circuits/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace netpart {
namespace {

TEST(SplitMix64, KnownStream) {
  // Reference values for seed 0 from the SplitMix64 reference
  // implementation (Vigna).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, FromStringIsDeterministic) {
  Xoshiro256 a = Xoshiro256::from_string("Prim2");
  Xoshiro256 b = Xoshiro256::from_string("Prim2");
  EXPECT_EQ(a.next(), b.next());
  Xoshiro256 c = Xoshiro256::from_string("Prim1");
  Xoshiro256 d = Xoshiro256::from_string("Prim2");
  EXPECT_NE(c.next(), d.next());
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Xoshiro, BelowZeroThrows) {
  Xoshiro256 rng(7);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowCoversAllResidues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256 rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, RangeDegenerateSingleValue) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Xoshiro, RangeBadBoundsThrow) {
  Xoshiro256 rng(3);
  EXPECT_THROW(rng.range(2, 1), std::invalid_argument);
}

TEST(Xoshiro, UniformInHalfOpenUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U(0,1) is 0.5; with 10k samples the error should be tiny.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace netpart
