/// End-to-end tests of netpartd: real Unix-socket round trips against an
/// in-process Server, with responses compared bit-for-bit against direct
/// RepartitionSession calls.  The server must add *zero* numeric noise: the
/// protocol carries %.17g doubles and verbatim assignments, so equality
/// here is exact string/int equality, never EXPECT_NEAR.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_context.hpp"
#include "repart/edit_script.hpp"
#include "repart/session.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/runtime/admission.hpp"
#include "server/server.hpp"

namespace netpart::server {
namespace {

std::atomic<int> g_socket_counter{0};

std::string unique_socket() {
  return "@netpart-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(g_socket_counter.fetch_add(1));
}

/// The ECO script every edit test uses; valid against any benchmark with a
/// handful of modules (adds never reference pins of existing nets).
constexpr const char* kEcoScript =
    "add-module\n"
    "add-net eco0 0 1 2\n"
    "commit\n"
    "remove-net n1\n"
    "add-net eco1 3 4\n";

std::string assignment_of(const Partition& p) {
  std::string out;
  for (const Side s : p.sides()) out.push_back(s == Side::kLeft ? 'L' : 'R');
  return out;
}

/// Server running on its own I/O thread for the duration of a test.
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options) : server_(std::move(options)) {
    std::string error;
    if (!server_.start(error)) ADD_FAILURE() << "start: " << error;
    io_thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerFixture() { stop(); }

  void stop() {
    server_.request_stop();
    if (io_thread_.joinable()) io_thread_.join();
  }

  [[nodiscard]] Server& server() { return server_; }

 private:
  Server server_;
  std::thread io_thread_;
};

ServerOptions test_options(const std::string& socket) {
  ServerOptions options;
  options.socket_path = socket;
  options.enable_debug_ops = true;
  return options;
}

/// round_trip_json with failure reporting.
JsonValue rpc(Client& client, const std::string& request) {
  JsonValue response;
  EXPECT_TRUE(client.round_trip_json(request, response))
      << request << " -> " << client.last_error();
  return response;
}

std::string get_string(const JsonValue& v, std::string_view key) {
  const JsonValue* f = v.find(key);
  return (f != nullptr && f->is_string()) ? f->string : std::string();
}

double get_number(const JsonValue& v, std::string_view key) {
  const JsonValue* f = v.find(key);
  return (f != nullptr && f->is_number()) ? f->number : -1.0;
}

bool get_bool(const JsonValue& v, std::string_view key) {
  const JsonValue* f = v.find(key);
  return f != nullptr && f->is_bool() && f->boolean;
}

bool is_ok(const JsonValue& v) { return get_bool(v, "ok"); }

std::string error_code(const JsonValue& v) {
  const JsonValue* e = v.find("error");
  return e != nullptr ? get_string(*e, "code") : std::string();
}

std::string json_quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

TEST(ServerTest, PingSessionsAndStructuredErrors) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path))
      << client.last_error();

  EXPECT_TRUE(is_ok(rpc(client, R"({"id":1,"op":"ping"})")));

  const JsonValue garbage = rpc(client, "this is not json");
  EXPECT_FALSE(is_ok(garbage));
  EXPECT_EQ(error_code(garbage), "parse_error");

  const JsonValue unknown = rpc(client, R"({"id":2,"op":"frobnicate"})");
  EXPECT_EQ(error_code(unknown), "unknown_op");
  EXPECT_EQ(get_number(unknown, "id"), 2.0);

  const JsonValue invalid = rpc(client, R"({"id":3,"op":"load"})");
  EXPECT_EQ(error_code(invalid), "bad_request");

  const JsonValue no_session =
      rpc(client, R"({"id":4,"op":"partition","session":"ghost"})");
  EXPECT_EQ(error_code(no_session), "no_session");

  const JsonValue sessions = rpc(client, R"({"id":5,"op":"sessions"})");
  ASSERT_TRUE(is_ok(sessions));
  const JsonValue* list = sessions.find("sessions");
  ASSERT_NE(list, nullptr);
  EXPECT_TRUE(list->array.empty());
}

TEST(ServerTest, PartitionMatchesInProcessSessionExactly) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  const JsonValue loaded = rpc(
      client, R"({"id":1,"op":"load","session":"s","circuit":"Prim1"})");
  ASSERT_TRUE(is_ok(loaded));

  const JsonValue served =
      rpc(client, R"({"id":2,"op":"partition","session":"s"})");
  ASSERT_TRUE(is_ok(served));
  EXPECT_EQ(get_string(served, "served_from"), "compute");

  repart::RepartitionSession twin(make_benchmark("Prim1").hypergraph);
  const repart::RepartitionResult r = twin.repartition();

  EXPECT_EQ(get_number(served, "cut"), static_cast<double>(r.nets_cut));
  EXPECT_EQ(get_number(served, "ratio"), r.ratio);
  EXPECT_EQ(get_number(served, "lambda2"), r.lambda2);
  EXPECT_EQ(get_number(served, "lanczos_iterations"),
            static_cast<double>(r.lanczos_iterations));
  EXPECT_EQ(get_string(served, "assignment"), assignment_of(r.partition));
  EXPECT_FALSE(get_bool(served, "warm_started"));

  EXPECT_EQ(static_cast<std::int32_t>(get_number(loaded, "modules")),
            twin.hypergraph().num_modules());
  EXPECT_EQ(static_cast<std::int32_t>(get_number(loaded, "nets")),
            twin.hypergraph().num_nets());
}

TEST(ServerTest, EditThenRepartitionIsBitIdenticalToInProcessEco) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":1,"op":"load","session":"s","circuit":"bm1"})")));
  const JsonValue cold =
      rpc(client, R"({"id":2,"op":"partition","session":"s"})");
  ASSERT_TRUE(is_ok(cold));

  const JsonValue edited =
      rpc(client, std::string(R"({"id":3,"op":"edit","session":"s",)") +
                      R"("script":)" + json_quoted(kEcoScript) + "}");
  ASSERT_TRUE(is_ok(edited));
  EXPECT_EQ(get_number(edited, "batches"), 2.0);

  const JsonValue warm =
      rpc(client, R"({"id":4,"op":"repartition","session":"s"})");
  ASSERT_TRUE(is_ok(warm));
  EXPECT_TRUE(get_bool(warm, "warm_started"));

  // In-process twin: identical sequence, identical answers — bit for bit.
  repart::RepartitionSession twin(make_benchmark("bm1").hypergraph);
  repart::EditScriptApplier applier(twin.netlist());
  const repart::RepartitionResult twin_cold = twin.repartition();
  EXPECT_EQ(get_string(cold, "assignment"), assignment_of(twin_cold.partition));

  std::istringstream script_in(kEcoScript);
  const repart::EditScript script = repart::read_edit_script(script_in);
  for (const repart::EditBatch& batch : script.batches) applier.apply(batch);
  const repart::RepartitionResult twin_warm = twin.repartition();

  EXPECT_TRUE(twin_warm.warm_started);
  EXPECT_EQ(get_number(warm, "cut"), static_cast<double>(twin_warm.nets_cut));
  EXPECT_EQ(get_number(warm, "ratio"), twin_warm.ratio);
  EXPECT_EQ(get_string(warm, "assignment"),
            assignment_of(twin_warm.partition));
}

TEST(ServerTest, CacheHitServesIdenticalResultAndPrimesWarmPath) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":1,"op":"load","session":"a","circuit":"bm1"})")));
  const JsonValue computed =
      rpc(client, R"({"id":2,"op":"partition","session":"a"})");
  ASSERT_TRUE(is_ok(computed));
  EXPECT_EQ(get_string(computed, "served_from"), "compute");
  EXPECT_FALSE(get_bool(computed, "cached"));

  // Identical content in a different session: cache hit, identical bits.
  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":3,"op":"load","session":"b","circuit":"bm1"})")));
  const JsonValue hit =
      rpc(client, R"({"id":4,"op":"partition","session":"b"})");
  ASSERT_TRUE(is_ok(hit));
  EXPECT_EQ(get_string(hit, "served_from"), "cache");
  EXPECT_TRUE(get_bool(hit, "cached"));
  EXPECT_EQ(get_string(hit, "assignment"), get_string(computed, "assignment"));
  EXPECT_EQ(get_number(hit, "cut"), get_number(computed, "cut"));
  EXPECT_EQ(get_number(hit, "ratio"), get_number(computed, "ratio"));
  EXPECT_EQ(get_string(hit, "hash"), get_string(computed, "hash"));
  EXPECT_GE(fixture.server().stats().cache_hits, 1);

  // The hit must also prime session b's warm state: the same ECO sequence
  // now takes the identical warm path in both sessions.
  const std::string edit_a =
      std::string(R"({"id":5,"op":"edit","session":"a","script":)") +
      json_quoted(kEcoScript) + "}";
  const std::string edit_b =
      std::string(R"({"id":6,"op":"edit","session":"b","script":)") +
      json_quoted(kEcoScript) + "}";
  ASSERT_TRUE(is_ok(rpc(client, edit_a)));
  ASSERT_TRUE(is_ok(rpc(client, edit_b)));
  const JsonValue warm_a =
      rpc(client, R"({"id":7,"op":"repartition","session":"a"})");
  const JsonValue warm_b =
      rpc(client, R"({"id":8,"op":"repartition","session":"b"})");
  ASSERT_TRUE(is_ok(warm_a));
  ASSERT_TRUE(is_ok(warm_b));
  EXPECT_TRUE(get_bool(warm_a, "warm_started"));
  EXPECT_TRUE(get_bool(warm_b, "warm_started"));
  EXPECT_EQ(get_string(warm_a, "assignment"), get_string(warm_b, "assignment"));
  EXPECT_EQ(get_number(warm_a, "cut"), get_number(warm_b, "cut"));
  EXPECT_EQ(get_number(warm_a, "lanczos_iterations"),
            get_number(warm_b, "lanczos_iterations"));
}

TEST(ServerTest, CacheBypassRecomputesButAgreesWithCachedAnswer) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":1,"op":"load","session":"a","circuit":"Prim1"})")));
  const JsonValue first = rpc(
      client, R"({"id":2,"op":"partition","session":"a","use_cache":false})");
  ASSERT_TRUE(is_ok(first));
  EXPECT_EQ(get_string(first, "served_from"), "compute");

  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":3,"op":"load","session":"b","circuit":"Prim1"})")));
  const JsonValue second = rpc(
      client, R"({"id":4,"op":"partition","session":"b","use_cache":false})");
  ASSERT_TRUE(is_ok(second));
  EXPECT_EQ(get_string(second, "served_from"), "compute");
  // Determinism makes bypassed recomputation bit-identical anyway.
  EXPECT_EQ(get_string(first, "assignment"), get_string(second, "assignment"));
  EXPECT_EQ(fixture.server().stats().cache_hits, 0);
}

TEST(ServerTest, RepeatPartitionOnSameSessionIsIdempotent) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":1,"op":"load","session":"s","circuit":"Prim1"})")));
  const JsonValue first =
      rpc(client, R"({"id":2,"op":"partition","session":"s"})");
  const JsonValue again =
      rpc(client, R"({"id":3,"op":"partition","session":"s"})");
  ASSERT_TRUE(is_ok(first));
  ASSERT_TRUE(is_ok(again));
  EXPECT_EQ(get_string(again, "served_from"), "session");
  EXPECT_EQ(get_string(first, "assignment"), get_string(again, "assignment"));
  EXPECT_EQ(get_number(first, "ratio"), get_number(again, "ratio"));
}

TEST(ServerTest, BackpressureRejectsWithStructuredErrorWhenQueueFull) {
  ServerOptions options = test_options(unique_socket());
  options.queue_capacity = 2;
  ServerFixture fixture(options);
  Client blocker;
  Client burst;
  ASSERT_TRUE(blocker.connect(options.socket_path));
  ASSERT_TRUE(burst.connect(options.socket_path));

  // Wedge the executor, give the I/O thread time to dequeue the sleep, then
  // burst: 2 fit the queue, the rest must be rejected immediately.
  ASSERT_TRUE(blocker.send_line(R"({"id":0,"op":"sleep","sleep_ms":400})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int kBurst = 8;
  for (int i = 1; i <= kBurst; ++i)
    ASSERT_TRUE(burst.send_line(R"({"id":)" + std::to_string(i) +
                                R"(,"op":"ping"})"));

  int overloaded = 0;
  int ok = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::string line;
    ASSERT_TRUE(burst.read_line(line)) << burst.last_error();
    JsonValue response;
    std::string error;
    ASSERT_TRUE(parse_json(line, response, error)) << line;
    if (is_ok(response))
      ++ok;
    else if (error_code(response) == "overloaded")
      ++overloaded;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(overloaded, kBurst - 2);
  EXPECT_EQ(fixture.server().stats().rejected_overload, kBurst - 2);

  std::string sleep_response;
  EXPECT_TRUE(blocker.read_line(sleep_response));
}

TEST(ServerTest, QueueDeadlineExpiresWhileExecutorBusy) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  ASSERT_TRUE(client.send_line(R"({"id":0,"op":"sleep","sleep_ms":300})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(
      client.send_line(R"({"id":1,"op":"ping","timeout_ms":50})"));

  std::string line;
  ASSERT_TRUE(client.read_line(line));  // sleep completes first
  JsonValue sleep_response;
  std::string error;
  ASSERT_TRUE(parse_json(line, sleep_response, error));
  EXPECT_TRUE(is_ok(sleep_response));

  ASSERT_TRUE(client.read_line(line));
  JsonValue expired;
  ASSERT_TRUE(parse_json(line, expired, error));
  EXPECT_EQ(error_code(expired), "deadline_exceeded");
  EXPECT_EQ(fixture.server().stats().rejected_deadline, 1);
}

TEST(ServerTest, SigtermDrainsInFlightWorkBeforeExit) {
  std::string error;
  ASSERT_TRUE(Server::install_signal_handlers(error)) << error;

  ServerOptions options = test_options(unique_socket());
  Server server(options);
  ASSERT_TRUE(server.start(error)) << error;
  std::thread io([&server] { server.run(); });

  Client client;
  ASSERT_TRUE(client.connect(options.socket_path));
  // Queue slow work, then SIGTERM: the drain must still answer it.
  ASSERT_TRUE(client.send_line(R"({"id":1,"op":"sleep","sleep_ms":200})"));
  ASSERT_TRUE(client.send_line(R"({"id":2,"op":"ping"})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ::raise(SIGTERM);

  std::string line;
  ASSERT_TRUE(client.read_line(line)) << client.last_error();
  JsonValue first;
  ASSERT_TRUE(parse_json(line, first, error));
  EXPECT_TRUE(is_ok(first));
  ASSERT_TRUE(client.read_line(line)) << client.last_error();
  JsonValue second;
  ASSERT_TRUE(parse_json(line, second, error));
  EXPECT_TRUE(is_ok(second));
  EXPECT_EQ(get_number(second, "id"), 2.0);

  io.join();  // run() must return on its own after the drain
}

TEST(ServerTest, ShutdownOpDrainsAndStopsTheServer) {
  ServerOptions options = test_options(unique_socket());
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  std::thread io([&server] { server.run(); });

  Client client;
  ASSERT_TRUE(client.connect(options.socket_path));
  JsonValue response;
  ASSERT_TRUE(
      client.round_trip_json(R"({"id":1,"op":"shutdown"})", response));
  EXPECT_TRUE(is_ok(response));
  io.join();
}

TEST(ServerTest, IdleSessionsAreEvicted) {
  ServerOptions options = test_options(unique_socket());
  options.idle_timeout_ms = 100;
  ServerFixture fixture(options);
  Client client;
  ASSERT_TRUE(client.connect(options.socket_path));

  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":1,"op":"load","session":"s","circuit":"Prim1"})")));
  EXPECT_EQ(fixture.server().stats().sessions_live, 1);

  // The I/O loop sweeps on its 200 ms poll tick; wait past timeout + tick.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  const JsonValue gone =
      rpc(client, R"({"id":2,"op":"partition","session":"s"})");
  EXPECT_EQ(error_code(gone), "no_session");
  EXPECT_GE(fixture.server().stats().sessions_evicted, 1);
  EXPECT_EQ(fixture.server().stats().sessions_live, 0);
}

TEST(ServerTest, OversizedFrameIsRefusedAndConnectionClosed) {
  ServerOptions options = test_options(unique_socket());
  options.max_frame_bytes = 1024;
  ServerFixture fixture(options);
  Client client;
  ASSERT_TRUE(client.connect(options.socket_path));

  // 4 KiB with no newline: can never resync, must be refused.
  ASSERT_TRUE(client.send_line(std::string(4096, 'x')));
  std::string line;
  ASSERT_TRUE(client.read_line(line)) << client.last_error();
  JsonValue response;
  std::string error;
  ASSERT_TRUE(parse_json(line, response, error));
  EXPECT_EQ(error_code(response), "frame_too_large");
  EXPECT_EQ(fixture.server().stats().rejected_oversized, 1);
  // The server hangs up afterwards.
  EXPECT_FALSE(client.read_line(line));
}

TEST(ServerTest, MetricsOpReportsServerCounters) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  ASSERT_TRUE(is_ok(rpc(client, R"({"id":1,"op":"ping"})")));
  rpc(client, "garbage");  // one parse error
  const JsonValue metrics = rpc(client, R"({"id":2,"op":"metrics"})");
  ASSERT_TRUE(is_ok(metrics));
  EXPECT_GE(get_number(metrics, "requests_total"), 2.0);
  EXPECT_GE(get_number(metrics, "parse_errors"), 1.0);
  EXPECT_EQ(get_number(metrics, "queue_capacity"), 64.0);
  EXPECT_GE(get_number(metrics, "connections_accepted"), 1.0);
}

TEST(ServerTest, LoadFromInlineHgrAndHashMatchesContent) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  // 4 nets over 6 modules, inline .hgr (1-based pins).
  const JsonValue loaded = rpc(
      client,
      R"({"id":1,"op":"load","session":"tiny","hgr":"4 6\n1 2\n2 3 4\n4 5\n5 6\n"})");
  ASSERT_TRUE(is_ok(loaded));
  EXPECT_EQ(get_number(loaded, "modules"), 6.0);
  EXPECT_EQ(get_number(loaded, "nets"), 4.0);
  const std::string hash = get_string(loaded, "hash");
  EXPECT_EQ(hash.rfind("fnv1a:", 0), 0u);

  // Same content, different session: identical hash.
  const JsonValue reload = rpc(
      client,
      R"({"id":2,"op":"load","session":"tiny2","hgr":"4 6\n1 2\n2 3 4\n4 5\n5 6\n"})");
  EXPECT_EQ(get_string(reload, "hash"), hash);

  const JsonValue bad = rpc(
      client, R"({"id":3,"op":"load","session":"bad","hgr":"not an hgr"})");
  EXPECT_EQ(error_code(bad), "parse_error");
}

TEST(ServerTest, StatsOpReportsRollingLatencyPerOp) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(is_ok(rpc(client, R"({"id":1,"op":"ping"})")));
  ASSERT_TRUE(is_ok(rpc(client, R"({"id":2,"op":"load","session":"s","circuit":"Prim1"})")));
  ASSERT_TRUE(is_ok(rpc(client, R"({"id":3,"op":"partition","session":"s"})")));

  const JsonValue stats = rpc(client, R"({"id":4,"op":"stats"})");
  ASSERT_TRUE(is_ok(stats));
  EXPECT_GE(get_number(stats, "uptime_ms"), 0.0);
  EXPECT_GT(get_number(stats, "qps"), 0.0);
  EXPECT_GE(get_number(stats, "requests_total"), 5.0);
  EXPECT_GE(get_number(stats, "rss_bytes"), 0.0);

  // The overall window has seen every executed request; its percentiles
  // are monotone and bounded by the observed max.
  const JsonValue* all = stats.find("latency_ms");
  ASSERT_NE(all, nullptr);
  EXPECT_GE(get_number(*all, "count"), 5.0);
  EXPECT_LE(get_number(*all, "p50"), get_number(*all, "p90"));
  EXPECT_LE(get_number(*all, "p90"), get_number(*all, "p99"));
  EXPECT_LE(get_number(*all, "p99"), get_number(*all, "max"));

  // Per-op windows keyed by wire op name.
  const JsonValue* per_op = stats.find("op_latency_ms");
  ASSERT_NE(per_op, nullptr);
  const JsonValue* ping = per_op->find("ping");
  ASSERT_NE(ping, nullptr);
  EXPECT_EQ(get_number(*ping, "count"), 3.0);
  const JsonValue* part = per_op->find("partition");
  ASSERT_NE(part, nullptr);
  EXPECT_EQ(get_number(*part, "count"), 1.0);
}

TEST(ServerTest, StatsPrometheusBodyExposesServerFamilies) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  ASSERT_TRUE(is_ok(rpc(client, R"({"id":1,"op":"ping"})")));
  const JsonValue stats =
      rpc(client, R"({"id":2,"op":"stats","format":"prometheus"})");
  ASSERT_TRUE(is_ok(stats));
  EXPECT_EQ(get_string(stats, "format"), "prometheus");
  EXPECT_EQ(get_string(stats, "content_type"), "text/plain; version=0.0.4");
  const std::string body = get_string(stats, "body");
  EXPECT_NE(body.find("# TYPE netpartd_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE netpartd_request_latency_ms summary\n"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE netpartd_op_latency_ms_ping summary\n"),
            std::string::npos);
  EXPECT_NE(body.find("netpartd_queue_depth "), std::string::npos);

  const JsonValue bad = rpc(client, R"({"id":3,"op":"stats","format":"xml"})");
  EXPECT_EQ(error_code(bad), "bad_request");
}

TEST(ServerTest, InvalidTraceFormatIsRejected) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));
  const JsonValue bad = rpc(
      client, R"({"id":1,"op":"ping","trace":true,"trace_format":"svg"})");
  EXPECT_EQ(error_code(bad), "bad_request");
}

TEST(ServerTest, AccessLogWritesOneNdjsonLinePerExecutedRequest) {
  const std::string log_path =
      "access-log-test-" + std::to_string(::getpid()) + ".ndjson";
  std::remove(log_path.c_str());
  ServerOptions options = test_options(unique_socket());
  options.access_log_path = log_path;
  {
    ServerFixture fixture(options);
    Client client;
    ASSERT_TRUE(client.connect(fixture.server().options().socket_path));
    ASSERT_TRUE(is_ok(rpc(client, R"({"id":1,"op":"ping"})")));
    ASSERT_TRUE(is_ok(
        rpc(client, R"({"id":2,"op":"load","session":"s","circuit":"Prim1"})")));
    EXPECT_EQ(error_code(rpc(client, R"({"id":3,"op":"partition","session":"ghost"})")),
              "no_session");
    fixture.stop();
  }

  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::vector<JsonValue> lines;
  std::string line;
  while (std::getline(in, line)) {
    JsonValue entry;
    std::string error;
    ASSERT_TRUE(parse_json(line, entry, error)) << error << ": " << line;
    lines.push_back(std::move(entry));
  }
  ASSERT_EQ(lines.size(), 3u);
  for (const JsonValue& entry : lines) {
    EXPECT_GT(get_number(entry, "ts_ms"), 0.0);
    EXPECT_FALSE(get_string(entry, "op").empty());
    ASSERT_NE(entry.find("ok"), nullptr);
    EXPECT_GE(get_number(entry, "bytes_in"), 0.0);
    EXPECT_GT(get_number(entry, "bytes_out"), 0.0);
    EXPECT_GE(get_number(entry, "queue_ms"), 0.0);
    EXPECT_GE(get_number(entry, "exec_ms"), 0.0);
    ASSERT_NE(entry.find("cache_hit"), nullptr);
    ASSERT_NE(entry.find("slow"), nullptr);
    EXPECT_FALSE(get_bool(entry, "slow"));  // slow_ms unset: never flagged
    // Tracing fields are appended after every pre-existing key, so old
    // consumers keep working; untraced requests carry trace_id null.
    for (const char* key : {"trace_id", "span_id", "lane", "parse_us",
                            "admission_us", "queue_us", "execute_us",
                            "serialize_us", "write_us", "total_us"})
      ASSERT_NE(entry.find(key), nullptr) << key;
    EXPECT_GE(get_number(entry, "total_us"), 0.0);
  }
  EXPECT_EQ(get_string(lines[0], "op"), "ping");
  EXPECT_TRUE(get_bool(lines[0], "ok"));
  EXPECT_EQ(get_string(lines[2], "op"), "partition");
  EXPECT_FALSE(get_bool(lines[2], "ok"));
  EXPECT_EQ(get_string(lines[2], "outcome"), "error");
  std::remove(log_path.c_str());
}

#if NETPART_OBS_ENABLED
TEST(ServerTest, ChromeTraceRoundTripsThroughTheWire) {
  ServerOptions options = test_options(unique_socket());
  options.enable_obs = true;
  {
    ServerFixture fixture(options);
    Client client;
    ASSERT_TRUE(client.connect(fixture.server().options().socket_path));
    ASSERT_TRUE(is_ok(
        rpc(client, R"({"id":1,"op":"load","session":"s","circuit":"Prim1"})")));
    const JsonValue traced = rpc(
        client,
        R"({"id":2,"op":"partition","session":"s","trace":true,"trace_format":"chrome"})");
    ASSERT_TRUE(is_ok(traced));
    const JsonValue* trace = traced.find("trace");
    ASSERT_NE(trace, nullptr);
    const JsonValue* events = trace->find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->array.size(), 2u);  // metadata plus at least one span
    bool saw_complete = false;
    for (const JsonValue& ev : events->array) {
      const std::string ph = get_string(ev, "ph");
      EXPECT_TRUE(ph == "X" || ph == "M" || ph == "C") << ph;
      if (ph == "X") saw_complete = true;
    }
    EXPECT_TRUE(saw_complete);

    // Default trace_format: the obs snapshot JSON, not a trace-event array.
    const JsonValue obs_traced = rpc(
        client, R"({"id":3,"op":"partition","session":"s","trace":true})");
    ASSERT_TRUE(is_ok(obs_traced));
    const JsonValue* snap = obs_traced.find("trace");
    ASSERT_NE(snap, nullptr);
    EXPECT_NE(snap->find("spans"), nullptr);
  }
  // The executor enabled the process-wide registry; restore it so later
  // tests in this binary see the default-disabled state.
  obs::MetricsRegistry::instance().set_rolling_spans(false);
  obs::MetricsRegistry::instance().set_enabled(false);
  obs::MetricsRegistry::instance().reset();
}
#endif

TEST(ServerTest, ProfileOpControlsTheSamplingProfiler) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  // Validation happens at parse time, before dispatch.
  EXPECT_EQ(error_code(rpc(client, R"({"id":1,"op":"profile"})")),
            "bad_request");
  EXPECT_EQ(
      error_code(rpc(client, R"({"id":2,"op":"profile","action":"resume"})")),
      "bad_request");

  const JsonValue started =
      rpc(client, R"({"id":3,"op":"profile","action":"start"})");
  ASSERT_TRUE(is_ok(started));
  EXPECT_EQ(get_string(started, "op"), "profile");
#if NETPART_OBS_ENABLED
  EXPECT_TRUE(get_bool(started, "running"));
  // Double start is an error, and must not clobber the running session.
  EXPECT_EQ(
      error_code(rpc(client, R"({"id":4,"op":"profile","action":"start"})")),
      "bad_request");
#endif

  // Run real work under the profiler, plus one deterministic manual sample
  // (the server and this test share the process-wide profiler) so the dump
  // below has a guaranteed floor even on a machine where the partition
  // finishes between timer ticks.
  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":5,"op":"load","session":"p","circuit":"bm1"})")));
  ASSERT_TRUE(is_ok(rpc(
      client,
      R"({"id":6,"op":"partition","session":"p","use_cache":false})")));
  obs::Profiler::instance().sample_now();

  const JsonValue dump =
      rpc(client, R"({"id":7,"op":"profile","action":"dump"})");
  ASSERT_TRUE(is_ok(dump));
  const JsonValue* folded = dump.find("folded");
  ASSERT_NE(folded, nullptr);
  ASSERT_TRUE(folded->is_string());
#if NETPART_OBS_ENABLED
  EXPECT_GE(get_number(dump, "samples"), 1.0);
  EXPECT_GE(get_number(dump, "attribution"), 0.0);
  EXPECT_TRUE(get_bool(dump, "running"));
  // Every folded line is `path count` — the wire carries the same text
  // --profile-out writes.
  std::istringstream folded_in(folded->string);
  std::string folded_line;
  while (std::getline(folded_in, folded_line)) {
    const std::size_t space = folded_line.find(' ');
    ASSERT_NE(space, std::string::npos) << folded_line;
    EXPECT_GT(std::stoll(folded_line.substr(space + 1)), 0) << folded_line;
  }
#endif

  const JsonValue stopped =
      rpc(client, R"({"id":8,"op":"profile","action":"stop"})");
  ASSERT_TRUE(is_ok(stopped));
  EXPECT_FALSE(get_bool(stopped, "running"));
  // Samples survive stop() so dump-after-stop still works.
  const JsonValue after =
      rpc(client, R"({"id":9,"op":"profile","action":"dump"})");
  ASSERT_TRUE(is_ok(after));
  EXPECT_EQ(get_number(after, "samples"), get_number(dump, "samples"));

  // Clear the process-wide sample table for later tests in this binary.
  obs::Profiler::instance().start(0);
  obs::Profiler::instance().stop();
}

TEST(ServerTest, PartitionWithEventsSplicesTheConvergenceStream) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));

  // Fresh session, cache bypassed: the events request below is a real
  // compute (a session memo or cache hit would run no solver and leave the
  // spliced array legitimately empty).
  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":1,"op":"load","session":"e1","circuit":"bm1"})")));
  const JsonValue traced = rpc(
      client,
      R"({"id":2,"op":"partition","session":"e1","use_cache":false,"events":true})");
  ASSERT_TRUE(is_ok(traced));
  ASSERT_EQ(get_string(traced, "served_from"), "compute");
  const JsonValue* events = traced.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_GE(get_number(traced, "events_recorded"), 0.0);
  EXPECT_GE(get_number(traced, "events_dropped"), 0.0);
#if NETPART_OBS_ENABLED
  // The solver ran under an armed ring: the Lanczos iteration series must
  // be present, in emission order.
  ASSERT_FALSE(events->array.empty());
  EXPECT_EQ(get_number(traced, "events_recorded"),
            static_cast<double>(events->array.size()));
  bool saw_lanczos = false;
  double last_seq = -1.0;
  for (const JsonValue& ev : events->array) {
    EXPECT_GT(get_number(ev, "seq"), last_seq);
    last_seq = get_number(ev, "seq");
    if (get_string(ev, "kind") == "lanczos.iteration") {
      saw_lanczos = true;
      EXPECT_GE(get_number(ev, "j"), 0.0);
    }
  }
  EXPECT_TRUE(saw_lanczos);
#else
  EXPECT_TRUE(events->array.empty());
  EXPECT_EQ(get_number(traced, "events_recorded"), 0.0);
#endif

  // The splice must not perturb the result itself: an events-free compute
  // of the same circuit yields identical bits (and no "events" key — the
  // stream is strictly opt-in).
  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":3,"op":"load","session":"e2","circuit":"bm1"})")));
  const JsonValue plain = rpc(
      client, R"({"id":4,"op":"partition","session":"e2","use_cache":false})");
  ASSERT_TRUE(is_ok(plain));
  ASSERT_EQ(get_string(plain, "served_from"), "compute");
  EXPECT_EQ(plain.find("events"), nullptr);
  EXPECT_EQ(get_string(traced, "assignment"), get_string(plain, "assignment"));
  EXPECT_EQ(get_number(traced, "cut"), get_number(plain, "cut"));
  EXPECT_EQ(get_number(traced, "ratio"), get_number(plain, "ratio"));
}


/// One session's end-to-end conversation: cold partition, ECO edit, warm
/// repartition, idempotent replay.  Cache is bypassed so the responses are
/// a pure function of the session's own request sequence — the property
/// the lane-pinning determinism contract promises.
std::vector<std::string> run_session_workload(const std::string& socket,
                                              const std::string& session,
                                              const std::string& circuit) {
  Client client;
  EXPECT_TRUE(client.connect(socket)) << client.last_error();
  const std::vector<std::string> requests = {
      R"({"id":1,"op":"load","session":")" + session + R"(","circuit":")" +
          circuit + R"("})",
      R"({"id":2,"op":"partition","session":")" + session +
          R"(","use_cache":false})",
      R"({"id":3,"op":"edit","session":")" + session + R"(","script":)" +
          json_quoted(kEcoScript) + "}",
      R"({"id":4,"op":"repartition","session":")" + session +
          R"(","use_cache":false})",
      R"({"id":5,"op":"partition","session":")" + session +
          R"(","use_cache":false})",
  };
  std::vector<std::string> responses;
  for (const std::string& request : requests) {
    std::string line;
    EXPECT_TRUE(client.round_trip(request, line)) << client.last_error();
    responses.push_back(line);
  }
  return responses;
}

TEST(ServerTest, ExecutorPoolIsBitIdenticalToSingleExecutor) {
  const std::vector<std::pair<std::string, std::string>> sessions = {
      {"alpha", "bm1"},
      {"bravo", "Prim1"},
      {"charlie", "Test02"},
      {"delta", "Test03"}};

  // Reference: the classic single-executor server, sessions run one after
  // another.
  std::map<std::string, std::vector<std::string>> reference;
  {
    const ServerOptions options = test_options(unique_socket());
    ServerFixture fixture(options);
    for (const auto& [name, circuit] : sessions)
      reference[name] =
          run_session_workload(options.socket_path, name, circuit);
  }

  // Pools of 2 and 4 lanes, all sessions driven concurrently from separate
  // connections: every response line must match the reference byte for
  // byte.
  for (const std::size_t lanes : {std::size_t{2}, std::size_t{4}}) {
    ServerOptions options = test_options(unique_socket());
    options.executor_lanes = lanes;
    ServerFixture fixture(options);
    std::vector<std::vector<std::string>> results(sessions.size());
    std::vector<std::thread> threads;
    threads.reserve(sessions.size());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      threads.emplace_back([&, i] {
        results[i] = run_session_workload(options.socket_path,
                                          sessions[i].first,
                                          sessions[i].second);
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t i = 0; i < sessions.size(); ++i)
      EXPECT_EQ(results[i], reference[sessions[i].first])
          << "lanes=" << lanes << " session=" << sessions[i].first;
  }
}

/// The `sessions` op executes on lane 0 while other lanes mutate their
/// sessions (edits rewrite the hypergraph, partitions flip primed/pending),
/// so the listing must be built entirely from the atomic mirrors, never
/// the lane-owned state.  Under TSan this is the race detector for that
/// contract; in all builds it checks the listing stays well-formed under
/// concurrent mutation and exact once quiescent.
TEST(ServerTest, SessionsOpIsRaceFreeAgainstConcurrentLaneMutation) {
  ServerOptions options = test_options(unique_socket());
  options.executor_lanes = 4;
  ServerFixture fixture(options);

  std::atomic<bool> done{false};
  std::thread lister([&] {
    Client client;
    ASSERT_TRUE(client.connect(options.socket_path)) << client.last_error();
    while (!done.load(std::memory_order_relaxed)) {
      const JsonValue v = rpc(client, R"({"id":1,"op":"sessions"})");
      ASSERT_TRUE(is_ok(v));
      const JsonValue* list = v.find("sessions");
      ASSERT_NE(list, nullptr);
      for (const JsonValue& s : list->array) {
        EXPECT_FALSE(get_string(s, "name").empty());
        EXPECT_GE(get_number(s, "modules"), 1.0);
        EXPECT_GE(get_number(s, "nets"), 1.0);
      }
    }
  });

  const std::vector<std::pair<std::string, std::string>> sessions = {
      {"alpha", "bm1"}, {"bravo", "Prim1"}, {"charlie", "Test02"}};
  std::vector<std::thread> workers;
  workers.reserve(sessions.size());
  for (const auto& [name, circuit] : sessions)
    workers.emplace_back([&, name = name, circuit = circuit] {
      for (int round = 0; round < 3; ++round)
        run_session_workload(options.socket_path, name, circuit);
    });
  for (std::thread& t : workers) t.join();
  done.store(true, std::memory_order_relaxed);
  lister.join();

  // Quiescent: the workload ends primed with all edits folded in, and the
  // mirrored counts must agree with a fresh load+edit of the same circuit.
  Client client;
  ASSERT_TRUE(client.connect(options.socket_path)) << client.last_error();
  const JsonValue v = rpc(client, R"({"id":2,"op":"sessions"})");
  const JsonValue* list = v.find("sessions");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), sessions.size());
  for (const JsonValue& s : list->array) {
    EXPECT_TRUE(get_bool(s, "primed")) << get_string(s, "name");
    EXPECT_FALSE(get_bool(s, "pending_edits")) << get_string(s, "name");
    const auto it = std::find_if(
        sessions.begin(), sessions.end(),
        [&](const auto& p) { return p.first == get_string(s, "name"); });
    ASSERT_NE(it, sessions.end()) << get_string(s, "name");
    const Hypergraph reference = make_benchmark(it->second).hypergraph;
    // kEcoScript: one module added, one net removed, two nets added.
    EXPECT_EQ(get_number(s, "modules"), reference.num_modules() + 1)
        << it->first;
    EXPECT_EQ(get_number(s, "nets"), reference.num_nets() + 1) << it->first;
  }
}

TEST(ServerTest, AdmissionShedsColdBeforeWarmAtSaturation) {
  ServerOptions options = test_options(unique_socket());
  options.cold_slots = 1;
  options.warm_slots = 4;
  ServerFixture fixture(options);
  Client client;
  ASSERT_TRUE(client.connect(options.socket_path)) << client.last_error();

  // A primed-and-edited session: its next repartition classifies warm.
  ASSERT_TRUE(is_ok(rpc(
      client, R"({"id":1,"op":"load","session":"w","circuit":"bm1"})")));
  ASSERT_TRUE(is_ok(rpc(client, R"({"id":2,"op":"partition","session":"w"})")));
  ASSERT_TRUE(is_ok(rpc(client, R"({"id":3,"op":"edit","session":"w","script":)" +
                                    json_quoted(kEcoScript) + "}")));

  // Wedge the lane, then burst: three cold loads against one cold slot,
  // plus the warm repartition.  The warm request must ride through while
  // the cold surplus is shed with a structured hint.
  ASSERT_TRUE(client.send_line(R"({"id":10,"op":"sleep","sleep_ms":400})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(client.send_line(
      R"({"id":11,"op":"load","session":"c1","circuit":"bm1"})"));
  ASSERT_TRUE(client.send_line(
      R"({"id":12,"op":"load","session":"c2","circuit":"bm1"})"));
  ASSERT_TRUE(client.send_line(
      R"({"id":13,"op":"load","session":"c3","circuit":"bm1"})"));
  ASSERT_TRUE(client.send_line(R"({"id":14,"op":"repartition","session":"w"})"));

  std::map<int, JsonValue> by_id;
  for (int i = 0; i < 5; ++i) {
    std::string line;
    ASSERT_TRUE(client.read_line(line)) << client.last_error();
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parse_json(line, v, error)) << line;
    by_id[static_cast<int>(get_number(v, "id"))] = v;
  }

  EXPECT_TRUE(is_ok(by_id[10]));
  EXPECT_TRUE(is_ok(by_id[11]));  // fits the single cold slot
  for (const int shed_id : {12, 13}) {
    EXPECT_EQ(error_code(by_id[shed_id]), "overloaded") << shed_id;
    EXPECT_EQ(get_string(by_id[shed_id], "class"), "cold") << shed_id;
    EXPECT_GE(get_number(by_id[shed_id], "retry_after_ms"), 10.0) << shed_id;
  }
  EXPECT_TRUE(is_ok(by_id[14]));
  EXPECT_TRUE(get_bool(by_id[14], "warm_started"));

  const ServerStatsSnapshot st = fixture.server().stats();
  EXPECT_EQ(st.shed_cold, 2);
  EXPECT_EQ(st.shed_warm, 0);
  EXPECT_EQ(st.shed_hit, 0);
  EXPECT_EQ(st.rejected_overload, 2);
}

TEST(ServerTest, TcpTransportServesByteIdenticalResponses) {
  ServerOptions options = test_options(unique_socket());
  options.tcp_listen = "127.0.0.1:0";  // ephemeral port; read back below
  ServerFixture fixture(options);
  const int port = fixture.server().tcp_port();
  ASSERT_GT(port, 0);

  Client tcp;
  ASSERT_TRUE(tcp.connect_tcp("127.0.0.1:" + std::to_string(port)))
      << tcp.last_error();
  EXPECT_TRUE(is_ok(rpc(tcp, R"({"id":1,"op":"ping"})")));

  // The same cold workload over TCP and (after the session is gone) over
  // the unix socket: one protocol, one compute path, identical bytes.
  const std::string load_req =
      R"({"id":2,"op":"load","session":"x","circuit":"bm1"})";
  const std::string part_req =
      R"({"id":3,"op":"partition","session":"x","use_cache":false})";
  std::string tcp_load;
  std::string tcp_part;
  ASSERT_TRUE(tcp.round_trip(load_req, tcp_load)) << tcp.last_error();
  ASSERT_TRUE(tcp.round_trip(part_req, tcp_part)) << tcp.last_error();
  EXPECT_TRUE(is_ok(rpc(tcp, R"({"id":4,"op":"unload","session":"x"})")));

  Client unix_client;
  ASSERT_TRUE(unix_client.connect(options.socket_path))
      << unix_client.last_error();
  std::string unix_load;
  std::string unix_part;
  ASSERT_TRUE(unix_client.round_trip(load_req, unix_load))
      << unix_client.last_error();
  ASSERT_TRUE(unix_client.round_trip(part_req, unix_part))
      << unix_client.last_error();
  EXPECT_EQ(tcp_load, unix_load);
  EXPECT_EQ(tcp_part, unix_part);
}

TEST(ServerTest, TcpConnectToClosedPortFailsCleanly) {
  Client client;
  // Port 1 is privileged and unbound in the test environment.
  EXPECT_FALSE(client.connect_tcp("127.0.0.1:1"));
  EXPECT_FALSE(client.last_error().empty());
}

TEST(ServerTest, StatsExposeLanesAdmissionAndClassLatencies) {
  ServerOptions options = test_options(unique_socket());
  options.executor_lanes = 2;
  ServerFixture fixture(options);
  Client client;
  ASSERT_TRUE(client.connect(options.socket_path)) << client.last_error();
  ASSERT_TRUE(is_ok(rpc(client, R"({"id":1,"op":"ping"})")));

  const JsonValue stats = rpc(client, R"({"id":2,"op":"stats"})");
  ASSERT_TRUE(is_ok(stats));
  EXPECT_EQ(get_number(stats, "executor_lanes"), 2.0);
  const JsonValue* lanes = stats.find("lanes");
  ASSERT_NE(lanes, nullptr);
  ASSERT_EQ(lanes->array.size(), 2u);
  EXPECT_EQ(get_number(lanes->array[0], "queue_depth"), 0.0);
  const JsonValue* admission = stats.find("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_TRUE(get_bool(*admission, "enabled"));
  const JsonValue* cold = admission->find("cold");
  ASSERT_NE(cold, nullptr);
  EXPECT_GT(get_number(*cold, "cap"), 0.0);
  const JsonValue* class_lat = stats.find("class_latency_ms");
  ASSERT_NE(class_lat, nullptr);
  EXPECT_NE(class_lat->find("hit"), nullptr);
  EXPECT_NE(class_lat->find("warm"), nullptr);
  EXPECT_NE(class_lat->find("cold"), nullptr);

  const JsonValue prom =
      rpc(client, R"({"id":3,"op":"stats","format":"prometheus"})");
  ASSERT_TRUE(is_ok(prom));
  const std::string body = get_string(prom, "body");
  EXPECT_NE(body.find("netpartd_lane_queue_depth_0"), std::string::npos);
  EXPECT_NE(body.find("netpartd_lane_queue_depth_1"), std::string::npos);
  EXPECT_NE(body.find("netpartd_shed_cold_total"), std::string::npos);
  EXPECT_NE(body.find("netpartd_shed_warm_total"), std::string::npos);
  EXPECT_NE(body.find("netpartd_write_failures_total"), std::string::npos);
  EXPECT_NE(body.find("netpartd_class_latency_ms_hit"), std::string::npos);
  EXPECT_NE(body.find("netpartd_executor_lanes 2"), std::string::npos);

  // PR 10: per-class queue-wait and per-lane stage windows, in both the
  // JSON report and the Prometheus body.
  const JsonValue* class_queue = stats.find("class_queue_wait_ms");
  ASSERT_NE(class_queue, nullptr);
  EXPECT_NE(class_queue->find("hit"), nullptr);
  EXPECT_NE(class_queue->find("cold"), nullptr);
  const JsonValue* lane_queue = stats.find("lane_queue_wait_ms");
  ASSERT_NE(lane_queue, nullptr);
  EXPECT_EQ(lane_queue->array.size(), 2u);
  const JsonValue* lane_exec = stats.find("lane_execute_ms");
  ASSERT_NE(lane_exec, nullptr);
  EXPECT_EQ(lane_exec->array.size(), 2u);
  EXPECT_NE(body.find("netpartd_class_queue_wait_ms_hit"), std::string::npos);
  EXPECT_NE(body.find("netpartd_lane_queue_wait_ms_0"), std::string::npos);
  EXPECT_NE(body.find("netpartd_lane_execute_ms_1"), std::string::npos);
}

/// Tentpole end-to-end check: a trace-context-carrying request must echo
/// its trace_id (canonicalized) and the caller's span as parent_span_id,
/// mint a fresh server span, decompose its latency into stages that sum to
/// the measured wall time, and land the same identity in the access log,
/// the flight recorder, and the Prometheus exemplar.
TEST(ServerTest, TraceContextPropagatesAndStagesSumToWall) {
  const std::string log_path =
      "trace-access-log-" + std::to_string(::getpid()) + ".ndjson";
  std::remove(log_path.c_str());
  ServerOptions options = test_options(unique_socket());
  options.access_log_path = log_path;
  const std::string tid = "00112233445566778899aabbccddeeff";
  std::string server_span;
  {
    ServerFixture fixture(options);
    Client client;
    ASSERT_TRUE(client.connect(options.socket_path)) << client.last_error();
    ASSERT_TRUE(is_ok(rpc(
        client, R"({"id":1,"op":"load","session":"s","circuit":"Prim1"})")));
    // Uppercase hex on the wire: the echo must be canonical lowercase.
    const JsonValue traced = rpc(
        client,
        R"({"id":2,"op":"partition","session":"s","trace_id":"00112233445566778899AABBCCDDEEFF","span_id":"0123456789abcdef"})");
    ASSERT_TRUE(is_ok(traced));
    EXPECT_EQ(get_string(traced, "trace_id"), tid);
    EXPECT_EQ(get_string(traced, "parent_span_id"), "0123456789abcdef");
    server_span = get_string(traced, "span_id");
    ASSERT_EQ(server_span.size(), 16u);
    EXPECT_NE(server_span, "0123456789abcdef") << "server must mint its own";
    const JsonValue* stages = traced.find("stages_us");
    ASSERT_NE(stages, nullptr);
    // The envelope carries durations through `serialize`; `write` cannot be
    // known before the line is on the wire and lands in the access log.
    ASSERT_EQ(stages->object.size(), 5u);
    for (const char* name :
         {"parse", "admission", "queue", "execute", "serialize"})
      EXPECT_GE(get_number(*stages, name), 0.0) << name;

    // The exemplar on the class-latency p99 sample names this trace.
    const JsonValue prom =
        rpc(client, R"({"id":3,"op":"stats","format":"prometheus"})");
    ASSERT_TRUE(is_ok(prom));
    EXPECT_NE(get_string(prom, "body").find("# {trace_id=\"" + tid + "\"}"),
              std::string::npos);

    // The flight recorder holds the same request under the same identity.
    const JsonValue debug = rpc(client, R"({"id":4,"op":"debug","action":"flightrec"})");
    ASSERT_TRUE(is_ok(debug));
    EXPECT_TRUE(get_bool(debug, "enabled"));
    const JsonValue* records = debug.find("records");
    ASSERT_NE(records, nullptr);
    bool found = false;
    for (const JsonValue& r : records->array) {
      if (get_string(r, "trace_id") != tid) continue;
      if (get_string(r, "outcome") != "ok") continue;
      found = true;
      EXPECT_EQ(get_string(r, "op"), "partition");
      EXPECT_EQ(get_string(r, "span_id"), server_span);
      EXPECT_GE(get_number(r, "lane"), 0.0);
    }
    EXPECT_TRUE(found) << "traced request missing from the flight recorder";
    fixture.stop();
  }

  // Access log: same trace identity, and the full six-stage decomposition
  // must sum to total_us within flooring slack (one microsecond per stage).
  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  bool checked = false;
  while (std::getline(in, line)) {
    JsonValue entry;
    std::string error;
    ASSERT_TRUE(parse_json(line, entry, error)) << error << ": " << line;
    if (get_string(entry, "op") != "partition") continue;
    checked = true;
    EXPECT_EQ(get_string(entry, "trace_id"), tid);
    EXPECT_EQ(get_string(entry, "span_id"), server_span);
    EXPECT_GE(get_number(entry, "lane"), 0.0);
    double sum = 0.0;
    for (const char* name : {"parse_us", "admission_us", "queue_us",
                             "execute_us", "serialize_us", "write_us"}) {
      const double d = get_number(entry, name);
      EXPECT_GE(d, 0.0) << name;
      sum += d;
    }
    const double total = get_number(entry, "total_us");
    EXPECT_GE(total, sum);
    EXPECT_LE(total - sum, 6.0)
        << "stage durations must decompose the wall latency";
  }
  EXPECT_TRUE(checked);
  std::remove(log_path.c_str());
}

/// Trace context is observability, not input: carrying one must not change
/// a single payload byte of the partition result, at any lane count.  The
/// traced response must equal the untraced response with the trace envelope
/// removed, and the untraced response must be lane-count-invariant.
/// `served_from` is provenance, not payload — the second request to a
/// session is legitimately served from its warm state — so it is
/// normalised out before comparison.
TEST(ServerTest, TraceContextDoesNotPerturbPartitionResults) {
  const auto strip_provenance = [](std::string body) {
    const std::size_t key = body.find("\"served_from\":\"");
    if (key == std::string::npos) return body;
    const std::size_t end = body.find('"', key + 15);
    body.erase(key, end - key + 2);  // key, value, trailing comma
    return body;
  };
  std::string reference;
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    ServerOptions options = test_options(unique_socket());
    options.executor_lanes = lanes;
    ServerFixture fixture(options);
    Client client;
    ASSERT_TRUE(client.connect(options.socket_path)) << client.last_error();
    ASSERT_TRUE(is_ok(rpc(
        client, R"({"id":7,"op":"load","session":"s","circuit":"Prim1"})")));
    std::string untraced;
    ASSERT_TRUE(client.round_trip(
        R"({"id":8,"op":"partition","session":"s","use_cache":false})",
        untraced));
    std::string traced;
    ASSERT_TRUE(client.round_trip(
        R"({"id":8,"op":"partition","session":"s","use_cache":false,"trace_id":"feedfacefeedfacefeedfacefeedface","span_id":"0123456789abcdef"})",
        traced));
    const std::size_t envelope = traced.find(",\"trace_id\":");
    ASSERT_NE(envelope, std::string::npos);
    EXPECT_EQ(strip_provenance(traced.substr(0, envelope) + "}"),
              strip_provenance(untraced))
        << "lanes=" << lanes;
    if (reference.empty())
      reference = strip_provenance(untraced);
    else
      EXPECT_EQ(strip_provenance(untraced), reference) << "lanes=" << lanes;
  }
}

TEST(ServerTest, ErrorResponsesEchoTraceId) {
  ServerFixture fixture(test_options(unique_socket()));
  Client client;
  ASSERT_TRUE(client.connect(fixture.server().options().socket_path));
  const std::string tid = "feedfacefeedfacefeedfacefeedface";

  // Executed error (dispatch fails): full envelope with stages.
  const JsonValue no_session = rpc(
      client,
      R"({"id":1,"op":"partition","session":"ghost","trace_id":"feedfacefeedfacefeedfacefeedface"})");
  EXPECT_EQ(error_code(no_session), "no_session");
  EXPECT_EQ(get_string(no_session, "trace_id"), tid);
  EXPECT_NE(no_session.find("stages_us"), nullptr);

  // Pre-execution reject (unknown op): trace_id still echoed.
  const JsonValue unknown = rpc(
      client,
      R"({"id":2,"op":"frobnicate","trace_id":"feedfacefeedfacefeedfacefeedface"})");
  EXPECT_EQ(error_code(unknown), "unknown_op");
  EXPECT_EQ(get_string(unknown, "trace_id"), tid);

  // Malformed context is a schema violation, not silently dropped.
  const JsonValue bad_id =
      rpc(client, R"({"id":3,"op":"ping","trace_id":"not-hex"})");
  EXPECT_EQ(error_code(bad_id), "bad_request");
  const JsonValue bad_span = rpc(
      client,
      R"({"id":4,"op":"ping","trace_id":"feedfacefeedfacefeedfacefeedface","span_id":"xyz"})");
  EXPECT_EQ(error_code(bad_span), "bad_request");

  // The all-zero trace_id is the "absent" sentinel: parses, not echoed.
  const JsonValue zeros = rpc(
      client,
      R"({"id":5,"op":"ping","trace_id":"00000000000000000000000000000000"})");
  ASSERT_TRUE(is_ok(zeros));
  EXPECT_EQ(zeros.find("trace_id"), nullptr);
}

TEST(ServerTest, DebugOpDrainsFlightRecorderAndValidatesAction) {
  ServerOptions options = test_options(unique_socket());
  options.flight_recorder_capacity = 16;
  ServerFixture fixture(options);
  Client client;
  ASSERT_TRUE(client.connect(options.socket_path)) << client.last_error();

  EXPECT_EQ(error_code(rpc(client, R"({"id":1,"op":"debug"})")),
            "bad_request");
  EXPECT_EQ(error_code(
                rpc(client, R"({"id":2,"op":"debug","action":"coredump"})")),
            "bad_request");

  ASSERT_TRUE(is_ok(rpc(client, R"({"id":3,"op":"ping"})")));
  const JsonValue drained =
      rpc(client, R"({"id":4,"op":"debug","action":"flightrec"})");
  ASSERT_TRUE(is_ok(drained));
  EXPECT_TRUE(get_bool(drained, "enabled"));
  EXPECT_EQ(get_number(drained, "capacity"), 16.0);
  EXPECT_GE(get_number(drained, "recorded"), 1.0);
  const JsonValue* records = drained.find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_FALSE(records->array.empty());
  bool saw_ping = false;
  for (const JsonValue& r : records->array) {
    EXPECT_FALSE(get_string(r, "outcome").empty());
    if (get_string(r, "op") == "ping") saw_ping = true;
  }
  EXPECT_TRUE(saw_ping);
  const JsonValue* notes = drained.find("notes");
  ASSERT_NE(notes, nullptr);
  bool saw_start = false;
  for (const JsonValue& n : notes->array)
    if (get_string(n, "kind") == "server.start") saw_start = true;
  EXPECT_TRUE(saw_start) << "server start note missing";
}

/// The obs layer cannot depend on the server target, so the flight
/// recorder duplicates the three admission-class labels.  This guard pins
/// them to runtime::class_name — if a class is ever added or renamed, this
/// is the test that fails.
TEST(ServerTest, FlightRecorderClassLabelsMatchAdmission) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.configure(0);
  recorder.configure(4);
  for (std::uint8_t cls = 0; cls < runtime::kNumClasses; ++cls) {
    recorder.configure(0);
    recorder.configure(4);
    obs::FlightRecord rec;
    rec.cls = cls;
    rec.set_op("ping");
    recorder.record(rec);
    const std::string expected =
        std::string("\"class\":\"") +
        runtime::class_name(static_cast<runtime::RequestClass>(cls)) + "\"";
    EXPECT_NE(recorder.records_to_json().find(expected), std::string::npos)
        << "class " << static_cast<int>(cls);
  }
  recorder.configure(0);
}

/// SIGQUIT is the non-fatal member of the crash-handler set: it dumps the
/// post-mortem NDJSON and lets the process continue.  This is the
/// in-process smoke for the async-signal-safe dump path; check.sh
/// postmortem_smoke covers the fatal SIGSEGV path on a real daemon.
TEST(ServerTest, SigquitDumpsPostmortemWithInFlightTraceIds) {
  const std::string pm_path =
      "postmortem-test-" + std::to_string(::getpid()) + ".ndjson";
  std::remove(pm_path.c_str());
  std::string error;
  ASSERT_TRUE(obs::FlightRecorder::install_crash_handlers(pm_path, &error))
      << error;
  const std::string tid = "0badc0de0badc0de0badc0de0badc0de";
  {
    ServerFixture fixture(test_options(unique_socket()));
    Client client;
    ASSERT_TRUE(client.connect(fixture.server().options().socket_path));
    ASSERT_TRUE(is_ok(rpc(
        client,
        R"({"id":1,"op":"ping","trace_id":"0badc0de0badc0de0badc0de0badc0de"})")));
    ASSERT_EQ(::raise(SIGQUIT), 0);
    fixture.stop();
  }
  std::ifstream in(pm_path);
  ASSERT_TRUE(in.is_open());
  std::vector<JsonValue> lines;
  std::string line;
  while (std::getline(in, line)) {
    JsonValue entry;
    std::string parse_err;
    ASSERT_TRUE(parse_json(line, entry, parse_err)) << parse_err << ": "
                                                    << line;
    lines.push_back(std::move(entry));
  }
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(get_string(lines[0], "type"), "postmortem");
  EXPECT_EQ(get_number(lines[0], "signal"), static_cast<double>(SIGQUIT));
  bool found = false;
  for (const JsonValue& entry : lines)
    if (get_string(entry, "type") == "request" &&
        get_string(entry, "trace_id") == tid)
      found = true;
  EXPECT_TRUE(found) << "traced request missing from the SIGQUIT dump";
  std::remove(pm_path.c_str());
}

}  // namespace
}  // namespace netpart::server