#include "graph/sparsity.hpp"

#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"

namespace netpart {
namespace {

TEST(Sparsity, HandComputedSmallCase) {
  // One 5-pin net + one 2-pin net sharing a module.
  // Clique model: C(5,2) + 1 = 11 edges -> 22 nonzeros over 6 modules.
  // Intersection graph: 1 edge -> 2 nonzeros over 2 nets.
  HypergraphBuilder b(6);
  b.add_net({0, 1, 2, 3, 4});
  b.add_net({4, 5});
  const SparsityComparison c = compare_sparsity(b.build());
  EXPECT_EQ(c.clique_nonzeros, 22);
  EXPECT_EQ(c.intersection_nonzeros, 2);
  EXPECT_EQ(c.clique_dimension, 6);
  EXPECT_EQ(c.intersection_dimension, 2);
  EXPECT_DOUBLE_EQ(c.ratio(), 11.0);
}

TEST(Sparsity, IntersectionGraphSparserOnBenchmarks) {
  // Section 1.2's claim: the IG representation carries far fewer nonzeros
  // than the clique model on real-shaped netlists (Test05: >10x in the
  // paper, driven by its very large nets).  Test05 carries clock/scan
  // rails here too, so its factor must be clearly material; Prim2 is
  // faithful to Table 1 (max net size 37) and shows a smaller but still
  // directionally consistent gap.
  {
    const GeneratedCircuit g = make_benchmark("Test05");
    const SparsityComparison c = compare_sparsity(g.hypergraph);
    EXPECT_GT(c.ratio(), 3.0);
  }
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    const GeneratedCircuit g = make_benchmark(spec.name);
    const SparsityComparison c = compare_sparsity(g.hypergraph);
    EXPECT_GT(c.ratio(), 1.2) << spec.name;
    EXPECT_GT(c.clique_nonzeros, c.intersection_nonzeros) << spec.name;
  }
}

TEST(Sparsity, EmptyIntersectionGraphRatioZero) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  const SparsityComparison c = compare_sparsity(b.build());
  EXPECT_EQ(c.intersection_nonzeros, 0);
  EXPECT_DOUBLE_EQ(c.ratio(), 0.0);
}

}  // namespace
}  // namespace netpart
