#include "spectral/split_sweep.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

namespace netpart {
namespace {

/// Two triangles joined by a single bridge net; the obvious best split
/// cuts only the bridge.
Hypergraph two_triangles() {
  HypergraphBuilder b(6);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({0, 2});
  b.add_net({3, 4});
  b.add_net({4, 5});
  b.add_net({3, 5});
  b.add_net({2, 3});  // bridge
  return b.build();
}

TEST(SplitSweep, FindsBridgeCutOnGoodOrdering) {
  const Hypergraph h = two_triangles();
  const std::vector<std::int32_t> order{0, 1, 2, 3, 4, 5};
  const SweepResult r = best_ratio_cut_split(h, order);
  EXPECT_EQ(r.best_rank, 3);
  EXPECT_EQ(r.nets_cut, 1);
  EXPECT_DOUBLE_EQ(r.ratio, 1.0 / 9.0);
  EXPECT_EQ(r.partition.size(Side::kLeft), 3);
}

TEST(SplitSweep, RespectsOrderingNotIds) {
  const Hypergraph h = two_triangles();
  // Reversed ordering still finds the rank-3 split (other triangle first).
  const std::vector<std::int32_t> order{5, 4, 3, 2, 1, 0};
  const SweepResult r = best_ratio_cut_split(h, order);
  EXPECT_EQ(r.best_rank, 3);
  EXPECT_EQ(r.nets_cut, 1);
  EXPECT_EQ(r.partition.side(5), Side::kLeft);
  EXPECT_EQ(r.partition.side(0), Side::kRight);
}

TEST(SplitSweep, BadOrderingGivesWorseRatio) {
  const Hypergraph h = two_triangles();
  // Interleaved ordering: no prefix isolates a triangle.
  const std::vector<std::int32_t> interleaved{0, 3, 1, 4, 2, 5};
  const SweepResult bad = best_ratio_cut_split(h, interleaved);
  const std::vector<std::int32_t> good{0, 1, 2, 3, 4, 5};
  const SweepResult best = best_ratio_cut_split(h, good);
  EXPECT_GT(bad.ratio, best.ratio);
}

TEST(SplitSweep, ReportedValuesConsistent) {
  const Hypergraph h = two_triangles();
  const std::vector<std::int32_t> order{2, 0, 1, 5, 3, 4};
  const SweepResult r = best_ratio_cut_split(h, order);
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
  EXPECT_DOUBLE_EQ(r.ratio, ratio_cut(h, r.partition));
  EXPECT_EQ(r.partition.size(Side::kLeft), r.best_rank);
}

TEST(SplitSweep, TinyInstances) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  const Hypergraph h = b.build();
  const std::vector<std::int32_t> order{0, 1};
  const SweepResult r = best_ratio_cut_split(h, order);
  EXPECT_EQ(r.best_rank, 1);
  EXPECT_EQ(r.nets_cut, 1);

  HypergraphBuilder b1(1);
  const Hypergraph single = b1.build();
  const std::vector<std::int32_t> order1{0};
  const SweepResult r1 = best_ratio_cut_split(single, order1);
  EXPECT_EQ(r1.best_rank, 0);  // no proper split exists
}

TEST(SplitSweep, RejectsWrongOrderSize) {
  const Hypergraph h = two_triangles();
  const std::vector<std::int32_t> order{0, 1, 2};
  EXPECT_THROW(best_ratio_cut_split(h, order), std::invalid_argument);
}

TEST(SplitSweep, SweepIsExhaustive) {
  // The returned ratio equals the explicit minimum over all prefixes.
  const Hypergraph h = two_triangles();
  const std::vector<std::int32_t> order{1, 4, 0, 5, 2, 3};
  const SweepResult r = best_ratio_cut_split(h, order);
  double manual_best = std::numeric_limits<double>::infinity();
  for (std::int32_t rank = 1; rank < 6; ++rank) {
    Partition p(6, Side::kRight);
    for (std::int32_t i = 0; i < rank; ++i)
      p.assign(order[static_cast<std::size_t>(i)], Side::kLeft);
    manual_best = std::min(manual_best, ratio_cut(h, p));
  }
  EXPECT_DOUBLE_EQ(r.ratio, manual_best);
}

}  // namespace
}  // namespace netpart
