#include "hypergraph/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace netpart {
namespace {

TEST(Stats, EmptyHypergraph) {
  const HypergraphStats s = compute_stats(Hypergraph{});
  EXPECT_EQ(s.num_modules, 0);
  EXPECT_EQ(s.num_nets, 0);
  EXPECT_EQ(s.num_pins, 0);
  EXPECT_DOUBLE_EQ(s.avg_net_size, 0.0);
}

TEST(Stats, CountsAndAverages) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({0, 1, 2, 3});
  const HypergraphStats s = compute_stats(b.build());
  EXPECT_EQ(s.num_modules, 4);
  EXPECT_EQ(s.num_nets, 2);
  EXPECT_EQ(s.num_pins, 6);
  EXPECT_DOUBLE_EQ(s.avg_net_size, 3.0);
  EXPECT_EQ(s.max_net_size, 4);
  EXPECT_DOUBLE_EQ(s.avg_module_degree, 1.5);
  EXPECT_EQ(s.max_module_degree, 2);
}

TEST(Stats, HistogramByNetSize) {
  HypergraphBuilder b(5);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({0, 1, 2});
  const HypergraphStats s = compute_stats(b.build());
  ASSERT_EQ(s.net_size_histogram.size(), 4u);
  EXPECT_EQ(s.net_size_histogram[2], 2);
  EXPECT_EQ(s.net_size_histogram[3], 1);
}

TEST(Stats, StreamOutputContainsFields) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  std::ostringstream os;
  os << compute_stats(b.build());
  const std::string text = os.str();
  EXPECT_NE(text.find("modules:"), std::string::npos);
  EXPECT_NE(text.find("nets:"), std::string::npos);
  EXPECT_NE(text.find("pins:"), std::string::npos);
}

}  // namespace
}  // namespace netpart
