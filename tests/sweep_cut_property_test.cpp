/// Property tests for the incremental Phase II state (`SweepCutEvaluator`)
/// and the SoA matcher's incremental classification, both introduced by the
/// hot-kernel rework.  The contract under test is *bit-identity*:
///
///  * after every one of the m-1 sweep moves, the evaluator's counters must
///    equal what the from-scratch `compute_fates` + `evaluate_fates` pair
///    produces for the full label vector — on random hypergraphs, under
///    every IG weighting, for identity and shuffled move orders;
///  * the completion cuts the counters claim must equal `net_cut` of the
///    actually materialized wholesale partitions;
///  * `classify_incremental` must agree element-wise with the from-scratch
///    `classify()` at every split, and the repaired matching must stay the
///    size of a from-scratch maximum matching (Kuhn) on the oracle corpus
///    the IG-Match heuristic is validated on.

#include "igmatch/sweep_cut.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "circuits/rng.hpp"
#include "graph/intersection_graph.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "hypergraph/hypergraph.hpp"
#include "igmatch/dynamic_matcher.hpp"

namespace netpart {
namespace {

/// Random connected circuit with `n` in [min_modules, max_modules]: a chain
/// seed keeps it connected, extra nets of size 2..5 add overlap structure.
Hypergraph random_circuit(std::uint64_t seed, std::int64_t min_modules,
                          std::int64_t max_modules) {
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const auto n =
      static_cast<std::int32_t>(rng.range(min_modules, max_modules));
  HypergraphBuilder builder(n);
  for (std::int32_t i = 0; i + 1 < n; i += 2) builder.add_net({i, i + 1});
  const auto extra = static_cast<std::int32_t>(rng.range(n / 2, 2 * n));
  for (std::int32_t e = 0; e < extra; ++e) {
    const auto size = static_cast<std::int32_t>(
        rng.range(2, std::min<std::int64_t>(5, n)));
    std::vector<ModuleId> pins;
    for (std::int32_t i = 0; i < size; ++i)
      pins.push_back(
          static_cast<ModuleId>(rng.below(static_cast<std::uint64_t>(n))));
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() >= 2) builder.add_net(pins);
  }
  return builder.build();
}

/// Seed-dependent permutation of 0..m-1 (the sweep's move order).
std::vector<std::int32_t> shuffled_order(std::int32_t m, std::uint64_t seed) {
  std::vector<std::int32_t> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  Xoshiro256 rng(seed ^ 0xfeedfaceULL);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[static_cast<std::size_t>(rng.below(i))]);
  return order;
}

/// From-scratch maximum matching (Kuhn) under the current side split; the
/// reference the incremental repair is checked against.
std::int32_t reference_matching_size(const WeightedGraph& g,
                                     const std::vector<NetSide>& side) {
  const std::int32_t n = g.num_vertices();
  std::vector<std::int32_t> match(static_cast<std::size_t>(n), -1);
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  const auto try_augment = [&](auto&& self, std::int32_t x) -> bool {
    for (const std::int32_t y : g.neighbors(x)) {
      if (side[static_cast<std::size_t>(y)] != NetSide::kRight) continue;
      if (used[static_cast<std::size_t>(y)]) continue;
      used[static_cast<std::size_t>(y)] = 1;
      if (match[static_cast<std::size_t>(y)] == -1 ||
          self(self, match[static_cast<std::size_t>(y)])) {
        match[static_cast<std::size_t>(y)] = x;
        return true;
      }
    }
    return false;
  };
  std::int32_t size = 0;
  for (std::int32_t x = 0; x < n; ++x) {
    if (side[static_cast<std::size_t>(x)] != NetSide::kLeft) continue;
    std::fill(used.begin(), used.end(), 0);
    if (try_augment(try_augment, x)) ++size;
  }
  return size;
}

/// Materialize one wholesale completion of the given fates and count its
/// cut with the plain `net_cut` metric — the ground truth the evaluator's
/// O(1) counters must reproduce.
std::int32_t materialized_cut(const Hypergraph& h,
                              const std::vector<ModuleFate>& fate,
                              Side unresolved_side) {
  Partition p(h.num_modules(), Side::kLeft);
  for (std::int32_t m = 0; m < h.num_modules(); ++m) {
    const ModuleFate f = fate[static_cast<std::size_t>(m)];
    const Side side = f == ModuleFate::kLeft    ? Side::kLeft
                      : f == ModuleFate::kRight ? Side::kRight
                                                : unresolved_side;
    p.assign(m, side);
  }
  return net_cut(h, p);
}

constexpr IgWeighting kWeightings[] = {IgWeighting::kPaper,
                                       IgWeighting::kUniform,
                                       IgWeighting::kOverlap,
                                       IgWeighting::kJaccard};

/// The headline property: across random hypergraphs x all IG weightings,
/// the incremental counters equal the from-scratch pair after EVERY move.
TEST(SweepCutPropertyTest, IncrementalEqualsFromScratchEverySplit) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Hypergraph h = random_circuit(seed, 8, 40);
    for (const IgWeighting weighting : kWeightings) {
      const WeightedGraph ig = intersection_graph(h, weighting);
      const std::int32_t m = h.num_nets();
      DynamicBipartiteMatcher matcher(ig);
      SweepCutEvaluator evaluator(h);
      std::vector<NetLabelChange> changes;
      std::vector<ModuleFate> reference_fates;
      const std::vector<std::int32_t> order =
          shuffled_order(m, seed * 31 + static_cast<std::uint64_t>(weighting));

      for (std::int32_t rank = 0; rank + 1 < m; ++rank) {
        matcher.move_to_right(order[static_cast<std::size_t>(rank)]);
        matcher.classify_incremental(changes);
        evaluator.apply(changes);

        compute_fates(h, matcher.labels(), reference_fates);
        ASSERT_EQ(evaluator.fates(), reference_fates)
            << "seed " << seed << " weighting " << to_string(weighting)
            << " rank " << rank;
        const SplitEvaluation expected = evaluate_fates(h, reference_fates);
        const SplitEvaluation got = evaluator.evaluation();
        ASSERT_EQ(got.cut_none_left, expected.cut_none_left)
            << "seed " << seed << " rank " << rank;
        ASSERT_EQ(got.cut_none_right, expected.cut_none_right)
            << "seed " << seed << " rank " << rank;
        ASSERT_EQ(got.left_fixed, expected.left_fixed);
        ASSERT_EQ(got.right_fixed, expected.right_fixed);
        ASSERT_EQ(got.unresolved, expected.unresolved);
      }
    }
  }
}

/// The counters are not just internally consistent: the two completion
/// cuts must equal `net_cut` of the partitions they describe.
TEST(SweepCutPropertyTest, CountersMatchMaterializedCompletionCuts) {
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    const Hypergraph h = random_circuit(seed, 6, 24);
    const WeightedGraph ig = intersection_graph(h);
    const std::int32_t m = h.num_nets();
    DynamicBipartiteMatcher matcher(ig);
    SweepCutEvaluator evaluator(h);
    std::vector<NetLabelChange> changes;
    for (std::int32_t rank = 0; rank + 1 < m; ++rank) {
      matcher.move_to_right(rank);
      matcher.classify_incremental(changes);
      evaluator.apply(changes);
      const SplitEvaluation eval = evaluator.evaluation();
      ASSERT_EQ(eval.cut_none_left,
                materialized_cut(h, evaluator.fates(), Side::kLeft))
          << "seed " << seed << " rank " << rank;
      ASSERT_EQ(eval.cut_none_right,
                materialized_cut(h, evaluator.fates(), Side::kRight))
          << "seed " << seed << " rank " << rank;
    }
  }
}

/// SoA-matcher equivalence on the oracle corpus (the tiny instances the
/// exhaustive IG-Match oracle runs on): at every split the incremental
/// labels must equal the from-scratch `classify()`, and the repaired
/// matching must have from-scratch-maximum size.
TEST(SweepCutPropertyTest, SoaMatcherMatchesReferenceOnOracleCorpus) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const Hypergraph h = random_circuit(seed, 4, 12);
    const WeightedGraph ig = intersection_graph(h);
    const std::int32_t m = h.num_nets();
    DynamicBipartiteMatcher matcher(ig);
    std::vector<NetSide> side(static_cast<std::size_t>(m), NetSide::kLeft);
    std::vector<NetLabelChange> changes;
    const std::vector<std::int32_t> order = shuffled_order(m, seed);
    for (std::int32_t rank = 0; rank < m; ++rank) {
      const std::int32_t v = order[static_cast<std::size_t>(rank)];
      matcher.move_to_right(v);
      side[static_cast<std::size_t>(v)] = NetSide::kRight;
      matcher.classify_incremental(changes);

      ASSERT_EQ(matcher.matching_size(), reference_matching_size(ig, side))
          << "seed " << seed << " rank " << rank;
      const std::vector<NetLabel> reference = matcher.classify();
      const std::span<const NetLabel> incremental = matcher.labels();
      ASSERT_EQ(incremental.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i)
        ASSERT_EQ(incremental[i], reference[i])
            << "seed " << seed << " rank " << rank << " net " << i;
    }
  }
}

/// The IG adjacency pattern — and hence the matcher and the Phase II
/// counters — is weighting-independent: all four weightings must evaluate
/// every split identically.
TEST(SweepCutPropertyTest, SplitEvaluationsAreWeightingInvariant) {
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    const Hypergraph h = random_circuit(seed, 8, 30);
    const std::int32_t m = h.num_nets();
    std::vector<std::vector<SplitEvaluation>> per_weighting;
    for (const IgWeighting weighting : kWeightings) {
      const WeightedGraph ig = intersection_graph(h, weighting);
      DynamicBipartiteMatcher matcher(ig);
      SweepCutEvaluator evaluator(h);
      std::vector<NetLabelChange> changes;
      std::vector<SplitEvaluation> evals;
      for (std::int32_t rank = 0; rank + 1 < m; ++rank) {
        matcher.move_to_right(rank);
        matcher.classify_incremental(changes);
        evaluator.apply(changes);
        evals.push_back(evaluator.evaluation());
      }
      per_weighting.push_back(std::move(evals));
    }
    for (std::size_t w = 1; w < per_weighting.size(); ++w) {
      ASSERT_EQ(per_weighting[w].size(), per_weighting[0].size());
      for (std::size_t i = 0; i < per_weighting[0].size(); ++i) {
        ASSERT_EQ(per_weighting[w][i].cut_none_left,
                  per_weighting[0][i].cut_none_left)
            << "seed " << seed << " weighting " << w << " rank " << i;
        ASSERT_EQ(per_weighting[w][i].cut_none_right,
                  per_weighting[0][i].cut_none_right);
        ASSERT_EQ(per_weighting[w][i].left_fixed,
                  per_weighting[0][i].left_fixed);
        ASSERT_EQ(per_weighting[w][i].right_fixed,
                  per_weighting[0][i].right_fixed);
      }
    }
  }
}

}  // namespace
}  // namespace netpart
