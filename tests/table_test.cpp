#include "core/table.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

namespace netpart {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Both value cells start at the same column.
  const auto line_start = [&](int k) {
    std::size_t pos = 0;
    for (int i = 0; i < k; ++i) pos = out.find('\n', pos) + 1;
    return pos;
  };
  const std::string row1 = out.substr(line_start(2), out.find('\n', line_start(2)) - line_start(2));
  const std::string row2 = out.substr(line_start(3), out.find('\n', line_start(3)) - line_start(3));
  EXPECT_EQ(row1.find('1'), row2.find("22"));
}

TEST(TextTable, CsvOutput) {
  TextTable t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"has,comma", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1\n"
            "\"has,comma\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, AutoPrinterSwitchesOnEnvVar) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  {
    ::unsetenv("NETPART_CSV");
    std::ostringstream os;
    print_table_auto(t, os);
    EXPECT_NE(os.str().find("----"), std::string::npos);  // aligned mode
  }
  {
    ::setenv("NETPART_CSV", "1", 1);
    std::ostringstream os;
    print_table_auto(t, os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
    ::unsetenv("NETPART_CSV");
  }
}

TEST(FormatRatio, PaperStyle) {
  EXPECT_EQ(format_ratio(5.53e-5), "5.53 x 10^-5");
  EXPECT_EQ(format_ratio(1.24e-4), "12.40 x 10^-5");
  EXPECT_EQ(format_ratio(std::numeric_limits<double>::infinity()), "inf");
}

TEST(FormatPercent, RoundsToInteger) {
  EXPECT_EQ(format_percent(28.75), "29");
  EXPECT_EQ(format_percent(-1.2), "-1");
  EXPECT_EQ(format_percent(0.4), "0");
}

TEST(PercentImprovement, LowerIsBetterConvention) {
  EXPECT_DOUBLE_EQ(percent_improvement(10.0, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_improvement(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_improvement(10.0, 12.0), -20.0);
  EXPECT_DOUBLE_EQ(percent_improvement(0.0, 5.0), 0.0);  // guarded
}

}  // namespace
}  // namespace netpart
