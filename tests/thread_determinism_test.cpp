/// Cross-thread-count determinism: the contract of the parallel runtime is
/// that every pipeline — spectral (eig1), intersection-graph (igmatch),
/// combinatorial (FM multi-start), and the recursive multiway decomposition
/// on top of them — produces bit-identical results for any lane count.
/// The largest circuit exceeds the reduction chunk (4096 elements), so the
/// chunked parallel reduction paths are genuinely exercised, not just the
/// single-chunk fallback.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/generator.hpp"
#include "circuits/rng.hpp"
#include "cluster/multilevel.hpp"
#include "core/multiway.hpp"
#include "core/partitioner.hpp"
#include "fm/fm_partition.hpp"
#include "graph/intersection_graph.hpp"
#include "graph/weighted_graph.hpp"
#include "linalg/fiedler.hpp"
#include "obs/events.hpp"
#include "obs/profiler.hpp"
#include "parallel/thread_pool.hpp"
#include "repart/session.hpp"

namespace netpart {
namespace {

constexpr std::int32_t kLaneCounts[] = {1, 2, 8};

Hypergraph circuit(std::int32_t modules, const char* name) {
  GeneratorConfig config;
  config.name = name;
  config.num_modules = modules;
  config.num_nets = modules + modules / 10;
  return generate_circuit(config).hypergraph;
}

class ThreadDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    parallel::ThreadPool::instance().configure(1);
  }
};

/// Everything we pin about one partitioning run.
struct RunRecord {
  std::vector<std::int32_t> sides;
  std::int32_t nets_cut = 0;
  double ratio = 0.0;
  double lambda2 = 0.0;
  bool has_lambda2 = false;
};

RunRecord record_run(const Hypergraph& h, Algorithm algorithm) {
  PartitionerConfig config;
  config.algorithm = algorithm;
  const PartitionResult r = run_partitioner(h, config);
  RunRecord rec;
  rec.sides.reserve(static_cast<std::size_t>(h.num_modules()));
  for (ModuleId m = 0; m < h.num_modules(); ++m)
    rec.sides.push_back(r.partition.side(m) == Side::kLeft ? 0 : 1);
  rec.nets_cut = r.nets_cut;
  rec.ratio = r.ratio;
  rec.has_lambda2 = r.lambda2.has_value();
  rec.lambda2 = r.lambda2.value_or(0.0);
  return rec;
}

void expect_identical(const RunRecord& a, const RunRecord& b,
                      const std::string& context) {
  EXPECT_EQ(a.sides, b.sides) << context;
  EXPECT_EQ(a.nets_cut, b.nets_cut) << context;
  EXPECT_EQ(a.ratio, b.ratio) << context;  // bitwise, no tolerance
  EXPECT_EQ(a.has_lambda2, b.has_lambda2) << context;
  EXPECT_EQ(a.lambda2, b.lambda2) << context;
}

TEST_F(ThreadDeterminismTest, PipelinesBitIdenticalAcrossLaneCounts) {
  const Hypergraph circuits[] = {
      circuit(600, "det-small"),
      circuit(1200, "det-medium"),
      // > 4096 nets: dot products and SpMV cross the reduction chunk.
      circuit(5000, "det-large"),
  };
  const Algorithm algorithms[] = {Algorithm::kEig1, Algorithm::kIgMatch,
                                  Algorithm::kRatioCutFm};
  for (const Hypergraph& h : circuits) {
    for (const Algorithm algorithm : algorithms) {
      parallel::ThreadPool::instance().configure(1);
      const RunRecord reference = record_run(h, algorithm);
      for (const std::int32_t lanes : kLaneCounts) {
        if (lanes == 1) continue;
        parallel::ThreadPool::instance().configure(lanes);
        const std::string context = std::string(to_string(algorithm)) +
                                    " modules=" +
                                    std::to_string(h.num_modules()) +
                                    " lanes=" + std::to_string(lanes);
        expect_identical(record_run(h, algorithm), reference, context);
      }
    }
  }
}

TEST_F(ThreadDeterminismTest, FiedlerVectorBitIdenticalUpToNothingAtAll) {
  // The eigenvector itself (not just the derived partition) must match
  // exactly — same seed, same chunked reductions, so not even a sign flip
  // is possible between lane counts.
  const Hypergraph h = circuit(5000, "det-eigvec");
  const WeightedGraph ig = intersection_graph(h);
  parallel::ThreadPool::instance().configure(1);
  const linalg::FiedlerResult reference =
      linalg::fiedler_pair(ig.laplacian());
  for (const std::int32_t lanes : kLaneCounts) {
    if (lanes == 1) continue;
    parallel::ThreadPool::instance().configure(lanes);
    const linalg::FiedlerResult got = linalg::fiedler_pair(ig.laplacian());
    EXPECT_EQ(got.lambda2, reference.lambda2) << "lanes=" << lanes;
    EXPECT_EQ(got.vector, reference.vector) << "lanes=" << lanes;
    EXPECT_EQ(got.lanczos_iterations, reference.lanczos_iterations)
        << "lanes=" << lanes;
  }
}

TEST_F(ThreadDeterminismTest, IntersectionGraphBitIdenticalAcrossLaneCounts) {
  const Hypergraph h = circuit(5000, "det-ig");
  parallel::ThreadPool::instance().configure(1);
  const WeightedGraph reference = intersection_graph(h);
  for (const std::int32_t lanes : kLaneCounts) {
    if (lanes == 1) continue;
    parallel::ThreadPool::instance().configure(lanes);
    const WeightedGraph got = intersection_graph(h);
    ASSERT_EQ(got.num_vertices(), reference.num_vertices());
    for (std::int32_t v = 0; v < reference.num_vertices(); ++v) {
      const auto ref_neighbors = reference.neighbors(v);
      const auto got_neighbors = got.neighbors(v);
      ASSERT_EQ(got_neighbors.size(), ref_neighbors.size())
          << "vertex " << v << " lanes=" << lanes;
      const auto ref_weights = reference.weights(v);
      const auto got_weights = got.weights(v);
      for (std::size_t i = 0; i < ref_neighbors.size(); ++i) {
        EXPECT_EQ(got_neighbors[i], ref_neighbors[i])
            << "vertex " << v << " lanes=" << lanes;
        EXPECT_EQ(got_weights[i], ref_weights[i])
            << "vertex " << v << " lanes=" << lanes;  // bitwise
      }
    }
  }
}

TEST_F(ThreadDeterminismTest, FmThreadOptionSemantics) {
  const Hypergraph h = circuit(400, "det-fm-threads");
  parallel::ThreadPool::instance().configure(8);
  FmOptions reference_options;
  reference_options.num_threads = 1;
  const FmRunResult reference = ratio_cut_fm(h, reference_options);
  // 0 = auto (all pool lanes), negative = serial, large = clamped; all of
  // them must agree with the serial reference bit for bit.
  for (const std::int32_t threads : {0, -3, 2, 64}) {
    FmOptions options;
    options.num_threads = threads;
    const FmRunResult got = ratio_cut_fm(h, options);
    EXPECT_EQ(got.nets_cut, reference.nets_cut) << "threads=" << threads;
    EXPECT_EQ(got.weighted_cut, reference.weighted_cut)
        << "threads=" << threads;
    EXPECT_EQ(got.ratio, reference.ratio) << "threads=" << threads;
    EXPECT_EQ(got.starts_run, reference.starts_run) << "threads=" << threads;
    for (ModuleId m = 0; m < h.num_modules(); ++m)
      ASSERT_EQ(got.partition.side(m), reference.partition.side(m))
          << "module " << m << " threads=" << threads;
  }
}

TEST_F(ThreadDeterminismTest, MultiwayBitIdenticalAcrossLaneCounts) {
  const Hypergraph h = circuit(900, "det-multiway");
  MultiwayOptions options;
  options.max_block_size = 120;
  parallel::ThreadPool::instance().configure(1);
  const MultiwayResult reference = multiway_partition(h, options);
  for (const std::int32_t lanes : kLaneCounts) {
    if (lanes == 1) continue;
    parallel::ThreadPool::instance().configure(lanes);
    const MultiwayResult got = multiway_partition(h, options);
    ASSERT_EQ(got.partition.num_blocks(), reference.partition.num_blocks())
        << "lanes=" << lanes;
    for (ModuleId m = 0; m < h.num_modules(); ++m)
      ASSERT_EQ(got.partition.block_of(m), reference.partition.block_of(m))
          << "module " << m << " lanes=" << lanes;
    EXPECT_EQ(got.splits_performed, reference.splits_performed);
    EXPECT_EQ(got.nets_spanning, reference.nets_spanning);
    EXPECT_EQ(got.connectivity_cost, reference.connectivity_cost);
  }
}

TEST_F(ThreadDeterminismTest, VcycleEngineBitIdenticalAcrossLaneCounts) {
  // The full multilevel path — community detection, heavy-edge clustering,
  // contraction, coarsest IG-Match, per-level FM refinement, and two extra
  // side-constrained V-cycles — must be one deterministic pipeline at any
  // lane count.  Forced hierarchies (pair budget lifted) so every stage
  // genuinely runs; the largest circuit crosses the reduction chunk.
  const Hypergraph circuits[] = {
      circuit(600, "det-vcycle-small"),
      circuit(1200, "det-vcycle-medium"),
      circuit(5000, "det-vcycle-large"),
  };
  MultilevelOptions options;
  options.direct_pair_budget = 0;
  options.coarsen_to = 64;
  options.vcycles = 2;
  for (const Hypergraph& h : circuits) {
    parallel::ThreadPool::instance().configure(1);
    const MultilevelResult reference = multilevel_partition(h, options);
    ASSERT_GT(reference.levels, 0) << h.num_modules();
    for (const std::int32_t lanes : kLaneCounts) {
      if (lanes == 1) continue;
      parallel::ThreadPool::instance().configure(lanes);
      const MultilevelResult got = multilevel_partition(h, options);
      const std::string context = "modules=" +
                                  std::to_string(h.num_modules()) +
                                  " lanes=" + std::to_string(lanes);
      EXPECT_EQ(got.nets_cut, reference.nets_cut) << context;
      EXPECT_EQ(got.ratio, reference.ratio) << context;  // bitwise
      EXPECT_EQ(got.levels, reference.levels) << context;
      EXPECT_EQ(got.coarsest_modules, reference.coarsest_modules) << context;
      EXPECT_EQ(got.vcycles_run, reference.vcycles_run) << context;
      EXPECT_EQ(got.lambda2, reference.lambda2) << context;  // bitwise
      for (ModuleId m = 0; m < h.num_modules(); ++m)
        ASSERT_EQ(got.partition.side(m), reference.partition.side(m))
            << context << " module " << m;
      ASSERT_EQ(got.coarsest_partition.num_modules(),
                reference.coarsest_partition.num_modules())
          << context;
      for (ModuleId m = 0; m < reference.coarsest_partition.num_modules();
           ++m)
        ASSERT_EQ(got.coarsest_partition.side(m),
                  reference.coarsest_partition.side(m))
            << context << " coarse module " << m;
    }
  }
}

TEST_F(ThreadDeterminismTest, SamplerAndEventRingNeverPerturbResults) {
  // The profiler's promise is that observing a run cannot change it: with
  // live SIGPROF ticks landing mid-pipeline and every solver emitting into
  // the armed event ring, all lane counts must still match the quiet serial
  // reference bit for bit.
  const Hypergraph h = circuit(1200, "det-obs");
  const Algorithm algorithms[] = {Algorithm::kEig1, Algorithm::kIgMatch,
                                  Algorithm::kRatioCutFm};
  for (const Algorithm algorithm : algorithms) {
    parallel::ThreadPool::instance().configure(1);
    const RunRecord reference = record_run(h, algorithm);  // unobserved
    ASSERT_TRUE(obs::Profiler::instance().start(1000));
    obs::EventRing::instance().arm();
    for (const std::int32_t lanes : kLaneCounts) {
      parallel::ThreadPool::instance().configure(lanes);
      const std::string context = std::string(to_string(algorithm)) +
                                  " lanes=" + std::to_string(lanes) +
                                  " (sampler armed)";
      expect_identical(record_run(h, algorithm), reference, context);
    }
    obs::EventRing::instance().disarm();
    obs::Profiler::instance().stop();
#if NETPART_OBS_ENABLED
    // The observation must have been real, not a disarmed no-op.
    EXPECT_GT(obs::EventRing::instance().recorded(), 0)
        << to_string(algorithm);
#endif
  }
  // Leave the process-wide profiler table and ring empty for other tests.
  obs::Profiler::instance().start(0);
  obs::Profiler::instance().stop();
  obs::EventRing::instance().arm();
  obs::EventRing::instance().disarm();
}

/// One batch of the fixed repartitioning edit script.  The RNG is re-seeded
/// per trace, so every lane count sees the identical edit sequence.
void apply_deterministic_batch(repart::EditableNetlist& netlist,
                               Xoshiro256& rng) {
  const std::int32_t n = netlist.num_modules();
  // Two pin moves plus, every third batch, one net churn.
  for (std::int32_t op = 0; op < 2; ++op) {
    const auto net = static_cast<NetId>(
        rng.below(static_cast<std::uint64_t>(netlist.num_nets())));
    const auto pins = netlist.pins(net);
    if (pins.size() < 2) continue;
    const ModuleId from = pins[static_cast<std::size_t>(rng.below(pins.size()))];
    const auto to =
        static_cast<ModuleId>(rng.below(static_cast<std::uint64_t>(n)));
    if (to != from) netlist.move_pin(net, from, to);
  }
  if (rng.below(3) == 0) {
    netlist.remove_net(static_cast<NetId>(
        rng.below(static_cast<std::uint64_t>(netlist.num_nets()))));
    std::vector<ModuleId> pins;
    for (std::int32_t i = 0; i < 3; ++i)
      pins.push_back(
          static_cast<ModuleId>(rng.below(static_cast<std::uint64_t>(n))));
    netlist.add_net(pins);
  }
}

/// Everything we pin about one repartitioning batch, incremental IG state
/// included (flattened CSR: neighbor ids and raw weight bits).
struct RepartRecord {
  std::vector<std::int32_t> sides;
  std::int32_t nets_cut = 0;
  double ratio = 0.0;
  double lambda2 = 0.0;
  std::int32_t lanczos_iterations = 0;
  bool warm_started = false;
  std::vector<std::int32_t> ig_neighbors;
  std::vector<double> ig_weights;
};

std::vector<RepartRecord> repart_trace(const Hypergraph& h,
                                       std::int32_t lanes) {
  parallel::ThreadPool::instance().configure(lanes);
  repart::RepartitionSession session(h);
  Xoshiro256 rng = Xoshiro256::from_string("det-repart-edits");
  std::vector<RepartRecord> trace;
  for (std::int32_t batch = 0; batch < 20; ++batch) {
    if (batch > 0) apply_deterministic_batch(session.netlist(), rng);
    const repart::RepartitionResult r = session.repartition();
    RepartRecord rec;
    rec.sides.reserve(static_cast<std::size_t>(r.partition.num_modules()));
    for (ModuleId m = 0; m < r.partition.num_modules(); ++m)
      rec.sides.push_back(r.partition.side(m) == Side::kLeft ? 0 : 1);
    rec.nets_cut = r.nets_cut;
    rec.ratio = r.ratio;
    rec.lambda2 = r.lambda2;
    rec.lanczos_iterations = r.lanczos_iterations;
    rec.warm_started = r.warm_started;
    const WeightedGraph& ig = session.intersection_graph();
    for (std::int32_t v = 0; v < ig.num_vertices(); ++v) {
      const auto neighbors = ig.neighbors(v);
      const auto weights = ig.weights(v);
      rec.ig_neighbors.insert(rec.ig_neighbors.end(), neighbors.begin(),
                              neighbors.end());
      rec.ig_weights.insert(rec.ig_weights.end(), weights.begin(),
                            weights.end());
    }
    trace.push_back(std::move(rec));
  }
  return trace;
}

TEST_F(ThreadDeterminismTest, RepartitionPathBitIdenticalAcrossLaneCounts) {
  // > 4096 nets so the chunked parallel reductions run inside the warm
  // Lanczos restarts too, not just the cold ones.
  const Hypergraph h = circuit(4000, "det-repart");
  const std::vector<RepartRecord> reference = repart_trace(h, 1);
  ASSERT_EQ(reference.size(), 20u);
  // The script must actually exercise the warm path.
  std::int32_t warm = 0;
  for (const RepartRecord& rec : reference) warm += rec.warm_started ? 1 : 0;
  EXPECT_GE(warm, 15);
  for (const std::int32_t lanes : kLaneCounts) {
    if (lanes == 1) continue;
    const std::vector<RepartRecord> got = repart_trace(h, lanes);
    ASSERT_EQ(got.size(), reference.size()) << "lanes=" << lanes;
    for (std::size_t b = 0; b < reference.size(); ++b) {
      const std::string context =
          "lanes=" + std::to_string(lanes) + " batch=" + std::to_string(b);
      EXPECT_EQ(got[b].sides, reference[b].sides) << context;
      EXPECT_EQ(got[b].nets_cut, reference[b].nets_cut) << context;
      EXPECT_EQ(got[b].ratio, reference[b].ratio) << context;  // bitwise
      EXPECT_EQ(got[b].lambda2, reference[b].lambda2) << context;
      EXPECT_EQ(got[b].lanczos_iterations, reference[b].lanczos_iterations)
          << context;
      EXPECT_EQ(got[b].warm_started, reference[b].warm_started) << context;
      ASSERT_EQ(got[b].ig_neighbors, reference[b].ig_neighbors) << context;
      ASSERT_EQ(got[b].ig_weights, reference[b].ig_weights) << context;
    }
  }
}

}  // namespace
}  // namespace netpart
