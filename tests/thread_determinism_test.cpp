/// Cross-thread-count determinism: the contract of the parallel runtime is
/// that every pipeline — spectral (eig1), intersection-graph (igmatch),
/// combinatorial (FM multi-start), and the recursive multiway decomposition
/// on top of them — produces bit-identical results for any lane count.
/// The largest circuit exceeds the reduction chunk (4096 elements), so the
/// chunked parallel reduction paths are genuinely exercised, not just the
/// single-chunk fallback.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/generator.hpp"
#include "core/multiway.hpp"
#include "core/partitioner.hpp"
#include "fm/fm_partition.hpp"
#include "graph/intersection_graph.hpp"
#include "graph/weighted_graph.hpp"
#include "linalg/fiedler.hpp"
#include "parallel/thread_pool.hpp"

namespace netpart {
namespace {

constexpr std::int32_t kLaneCounts[] = {1, 2, 8};

Hypergraph circuit(std::int32_t modules, const char* name) {
  GeneratorConfig config;
  config.name = name;
  config.num_modules = modules;
  config.num_nets = modules + modules / 10;
  return generate_circuit(config).hypergraph;
}

class ThreadDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    parallel::ThreadPool::instance().configure(1);
  }
};

/// Everything we pin about one partitioning run.
struct RunRecord {
  std::vector<std::int32_t> sides;
  std::int32_t nets_cut = 0;
  double ratio = 0.0;
  double lambda2 = 0.0;
  bool has_lambda2 = false;
};

RunRecord record_run(const Hypergraph& h, Algorithm algorithm) {
  PartitionerConfig config;
  config.algorithm = algorithm;
  const PartitionResult r = run_partitioner(h, config);
  RunRecord rec;
  rec.sides.reserve(static_cast<std::size_t>(h.num_modules()));
  for (ModuleId m = 0; m < h.num_modules(); ++m)
    rec.sides.push_back(r.partition.side(m) == Side::kLeft ? 0 : 1);
  rec.nets_cut = r.nets_cut;
  rec.ratio = r.ratio;
  rec.has_lambda2 = r.lambda2.has_value();
  rec.lambda2 = r.lambda2.value_or(0.0);
  return rec;
}

void expect_identical(const RunRecord& a, const RunRecord& b,
                      const std::string& context) {
  EXPECT_EQ(a.sides, b.sides) << context;
  EXPECT_EQ(a.nets_cut, b.nets_cut) << context;
  EXPECT_EQ(a.ratio, b.ratio) << context;  // bitwise, no tolerance
  EXPECT_EQ(a.has_lambda2, b.has_lambda2) << context;
  EXPECT_EQ(a.lambda2, b.lambda2) << context;
}

TEST_F(ThreadDeterminismTest, PipelinesBitIdenticalAcrossLaneCounts) {
  const Hypergraph circuits[] = {
      circuit(600, "det-small"),
      circuit(1200, "det-medium"),
      // > 4096 nets: dot products and SpMV cross the reduction chunk.
      circuit(5000, "det-large"),
  };
  const Algorithm algorithms[] = {Algorithm::kEig1, Algorithm::kIgMatch,
                                  Algorithm::kRatioCutFm};
  for (const Hypergraph& h : circuits) {
    for (const Algorithm algorithm : algorithms) {
      parallel::ThreadPool::instance().configure(1);
      const RunRecord reference = record_run(h, algorithm);
      for (const std::int32_t lanes : kLaneCounts) {
        if (lanes == 1) continue;
        parallel::ThreadPool::instance().configure(lanes);
        const std::string context = std::string(to_string(algorithm)) +
                                    " modules=" +
                                    std::to_string(h.num_modules()) +
                                    " lanes=" + std::to_string(lanes);
        expect_identical(record_run(h, algorithm), reference, context);
      }
    }
  }
}

TEST_F(ThreadDeterminismTest, FiedlerVectorBitIdenticalUpToNothingAtAll) {
  // The eigenvector itself (not just the derived partition) must match
  // exactly — same seed, same chunked reductions, so not even a sign flip
  // is possible between lane counts.
  const Hypergraph h = circuit(5000, "det-eigvec");
  const WeightedGraph ig = intersection_graph(h);
  parallel::ThreadPool::instance().configure(1);
  const linalg::FiedlerResult reference =
      linalg::fiedler_pair(ig.laplacian());
  for (const std::int32_t lanes : kLaneCounts) {
    if (lanes == 1) continue;
    parallel::ThreadPool::instance().configure(lanes);
    const linalg::FiedlerResult got = linalg::fiedler_pair(ig.laplacian());
    EXPECT_EQ(got.lambda2, reference.lambda2) << "lanes=" << lanes;
    EXPECT_EQ(got.vector, reference.vector) << "lanes=" << lanes;
    EXPECT_EQ(got.lanczos_iterations, reference.lanczos_iterations)
        << "lanes=" << lanes;
  }
}

TEST_F(ThreadDeterminismTest, IntersectionGraphBitIdenticalAcrossLaneCounts) {
  const Hypergraph h = circuit(5000, "det-ig");
  parallel::ThreadPool::instance().configure(1);
  const WeightedGraph reference = intersection_graph(h);
  for (const std::int32_t lanes : kLaneCounts) {
    if (lanes == 1) continue;
    parallel::ThreadPool::instance().configure(lanes);
    const WeightedGraph got = intersection_graph(h);
    ASSERT_EQ(got.num_vertices(), reference.num_vertices());
    for (std::int32_t v = 0; v < reference.num_vertices(); ++v) {
      const auto ref_neighbors = reference.neighbors(v);
      const auto got_neighbors = got.neighbors(v);
      ASSERT_EQ(got_neighbors.size(), ref_neighbors.size())
          << "vertex " << v << " lanes=" << lanes;
      const auto ref_weights = reference.weights(v);
      const auto got_weights = got.weights(v);
      for (std::size_t i = 0; i < ref_neighbors.size(); ++i) {
        EXPECT_EQ(got_neighbors[i], ref_neighbors[i])
            << "vertex " << v << " lanes=" << lanes;
        EXPECT_EQ(got_weights[i], ref_weights[i])
            << "vertex " << v << " lanes=" << lanes;  // bitwise
      }
    }
  }
}

TEST_F(ThreadDeterminismTest, FmThreadOptionSemantics) {
  const Hypergraph h = circuit(400, "det-fm-threads");
  parallel::ThreadPool::instance().configure(8);
  FmOptions reference_options;
  reference_options.num_threads = 1;
  const FmRunResult reference = ratio_cut_fm(h, reference_options);
  // 0 = auto (all pool lanes), negative = serial, large = clamped; all of
  // them must agree with the serial reference bit for bit.
  for (const std::int32_t threads : {0, -3, 2, 64}) {
    FmOptions options;
    options.num_threads = threads;
    const FmRunResult got = ratio_cut_fm(h, options);
    EXPECT_EQ(got.nets_cut, reference.nets_cut) << "threads=" << threads;
    EXPECT_EQ(got.weighted_cut, reference.weighted_cut)
        << "threads=" << threads;
    EXPECT_EQ(got.ratio, reference.ratio) << "threads=" << threads;
    EXPECT_EQ(got.starts_run, reference.starts_run) << "threads=" << threads;
    for (ModuleId m = 0; m < h.num_modules(); ++m)
      ASSERT_EQ(got.partition.side(m), reference.partition.side(m))
          << "module " << m << " threads=" << threads;
  }
}

TEST_F(ThreadDeterminismTest, MultiwayBitIdenticalAcrossLaneCounts) {
  const Hypergraph h = circuit(900, "det-multiway");
  MultiwayOptions options;
  options.max_block_size = 120;
  parallel::ThreadPool::instance().configure(1);
  const MultiwayResult reference = multiway_partition(h, options);
  for (const std::int32_t lanes : kLaneCounts) {
    if (lanes == 1) continue;
    parallel::ThreadPool::instance().configure(lanes);
    const MultiwayResult got = multiway_partition(h, options);
    ASSERT_EQ(got.partition.num_blocks(), reference.partition.num_blocks())
        << "lanes=" << lanes;
    for (ModuleId m = 0; m < h.num_modules(); ++m)
      ASSERT_EQ(got.partition.block_of(m), reference.partition.block_of(m))
          << "module " << m << " lanes=" << lanes;
    EXPECT_EQ(got.splits_performed, reference.splits_performed);
    EXPECT_EQ(got.nets_spanning, reference.nets_spanning);
    EXPECT_EQ(got.connectivity_cost, reference.connectivity_cost);
  }
}

}  // namespace
}  // namespace netpart
