/// Tests for the Section 5 thresholding sparsification of the spectral
/// net-ordering computation.

#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/benchmarks.hpp"
#include "circuits/generator.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "igmatch/igmatch.hpp"
#include "spectral/eig1.hpp"

namespace netpart {
namespace {

Hypergraph circuit_with_rails() {
  GeneratorConfig c;
  c.name = "threshold-test";
  c.num_modules = 300;
  c.num_nets = 340;
  c.leaf_max = 16;
  c.rail_sizes = {60, 40};
  return generate_circuit(c).hypergraph;
}

TEST(Threshold, DisabledMatchesPlainOrdering) {
  const Hypergraph h = circuit_with_rails();
  const NetOrdering plain = spectral_net_ordering(h);
  const NetOrdering zero = spectral_net_ordering(
      h, IgWeighting::kPaper, linalg::LanczosOptions{}, 0);
  EXPECT_EQ(plain.order, zero.order);
  EXPECT_EQ(zero.nets_thresholded, 0);
}

TEST(Threshold, OrderingIsStillAPermutation) {
  const Hypergraph h = circuit_with_rails();
  const NetOrdering t = spectral_net_ordering(
      h, IgWeighting::kPaper, linalg::LanczosOptions{}, 10);
  EXPECT_TRUE(t.eigen_converged);
  ASSERT_EQ(static_cast<std::int32_t>(t.order.size()), h.num_nets());
  std::vector<char> seen(static_cast<std::size_t>(h.num_nets()), 0);
  for (const std::int32_t n : t.order) {
    ASSERT_GE(n, 0);
    ASSERT_LT(n, h.num_nets());
    ASSERT_FALSE(seen[static_cast<std::size_t>(n)]);
    seen[static_cast<std::size_t>(n)] = 1;
  }
}

TEST(Threshold, CountsThresholdedNets) {
  const Hypergraph h = circuit_with_rails();
  const NetOrdering t = spectral_net_ordering(
      h, IgWeighting::kPaper, linalg::LanczosOptions{}, 10);
  std::int32_t large = 0;
  for (NetId n = 0; n < h.num_nets(); ++n)
    if (h.net_size(n) > 10) ++large;
  EXPECT_EQ(t.nets_thresholded, large);
  EXPECT_GT(large, 0);
}

TEST(Threshold, ThresholdAboveMaxSizeIsNoOp) {
  const Hypergraph h = circuit_with_rails();
  const NetOrdering plain = spectral_net_ordering(h);
  const NetOrdering t = spectral_net_ordering(
      h, IgWeighting::kPaper, linalg::LanczosOptions{}, 10000);
  EXPECT_EQ(t.nets_thresholded, 0);
  EXPECT_EQ(plain.order, t.order);
}

TEST(Threshold, LargeNetsPlacedNearTheirNeighbours) {
  // A large net whose small neighbours all sit at one end of the ordering
  // must be interpolated near that end, not at the middle.
  HypergraphBuilder b(12);
  // Two clusters of 2-pin nets.
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 3});
  b.add_net({8, 9});
  b.add_net({9, 10});
  b.add_net({10, 11});
  b.add_net({3, 8});  // weak bridge
  // Large net living entirely in the first cluster.
  b.add_net({0, 1, 2, 3, 4, 5, 6, 7});
  const Hypergraph h = b.build();
  const NetOrdering t = spectral_net_ordering(
      h, IgWeighting::kPaper, linalg::LanczosOptions{}, 4);
  EXPECT_EQ(t.nets_thresholded, 1);
  const NetId large = 7;
  const auto pos = std::find(t.order.begin(), t.order.end(), large) -
                   t.order.begin();
  // First-cluster nets occupy one end; the large net must land within the
  // first half of whichever end holds nets 0-2.
  const auto pos_net0 =
      std::find(t.order.begin(), t.order.end(), 0) - t.order.begin();
  const bool cluster_at_front = pos_net0 < 4;
  if (cluster_at_front)
    EXPECT_LT(pos, 5);
  else
    EXPECT_GE(pos, 3);
}

TEST(Threshold, IgMatchStillProducesValidPartition) {
  const Hypergraph h = circuit_with_rails();
  IgMatchOptions options;
  options.threshold_net_size = 10;
  const IgMatchResult r = igmatch_partition(h, options);
  EXPECT_TRUE(r.partition.is_proper());
  EXPECT_EQ(r.nets_cut, net_cut(h, r.partition));
}

TEST(Threshold, QualityStaysReasonableOnBenchmarks) {
  // The thresholded ordering may lose some quality but must stay within a
  // sane factor of the exact one on a clustered circuit (the paper sells
  // thresholding as a speedup with modest quality impact; footnote 2
  // warns the information loss is real).
  const GeneratedCircuit g = make_benchmark("Prim1");
  IgMatchOptions exact;
  const IgMatchResult full = igmatch_partition(g.hypergraph, exact);
  IgMatchOptions thresholded;
  thresholded.threshold_net_size = 15;
  const IgMatchResult fast = igmatch_partition(g.hypergraph, thresholded);
  EXPECT_TRUE(fast.partition.is_proper());
  EXPECT_LT(fast.ratio, full.ratio * 4.0);
}

}  // namespace
}  // namespace netpart
