#include "linalg/tridiagonal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace netpart::linalg {
namespace {

/// Residual ||T y - lambda y|| for a tridiagonal T given by (diag, sub).
double residual(const std::vector<double>& diag,
                const std::vector<double>& sub, double lambda,
                const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = diag[i] * y[i] - lambda * y[i];
    if (i > 0) r += sub[i - 1] * y[i - 1];
    if (i + 1 < n) r += sub[i] * y[i + 1];
    acc += r * r;
  }
  return std::sqrt(acc);
}

TEST(Tridiagonal, EmptyAndSingleton) {
  EXPECT_TRUE(tridiagonal_eigenvalues({}, {}).empty());
  const auto vals = tridiagonal_eigenvalues({7.0}, {});
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_DOUBLE_EQ(vals[0], 7.0);
}

TEST(Tridiagonal, DiagonalMatrixSorted) {
  const auto vals = tridiagonal_eigenvalues({3.0, 1.0, 2.0}, {0.0, 0.0});
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_DOUBLE_EQ(vals[0], 1.0);
  EXPECT_DOUBLE_EQ(vals[1], 2.0);
  EXPECT_DOUBLE_EQ(vals[2], 3.0);
}

TEST(Tridiagonal, TwoByTwoAnalytic) {
  // [[0, 1], [1, 0]] has eigenvalues -1, 1.
  const auto vals = tridiagonal_eigenvalues({0.0, 0.0}, {1.0});
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_NEAR(vals[0], -1.0, 1e-12);
  EXPECT_NEAR(vals[1], 1.0, 1e-12);
}

TEST(Tridiagonal, PathLaplacianKnownSpectrum) {
  // Laplacian of the path P_n is tridiagonal with eigenvalues
  // 4 sin^2(pi k / (2n)), k = 0..n-1.
  const std::size_t n = 8;
  std::vector<double> diag(n, 2.0);
  diag.front() = diag.back() = 1.0;
  std::vector<double> sub(n - 1, -1.0);
  const auto vals = tridiagonal_eigenvalues(diag, sub);
  ASSERT_EQ(vals.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected =
        4.0 * std::pow(std::sin(std::numbers::pi * static_cast<double>(k) /
                                (2.0 * static_cast<double>(n))),
                       2.0);
    EXPECT_NEAR(vals[k], expected, 1e-10) << "k=" << k;
  }
}

TEST(Tridiagonal, EigenvectorsSatisfyDefinition) {
  const std::vector<double> diag{2.0, 5.0, 1.0, -3.0, 0.5};
  const std::vector<double> sub{1.0, -2.0, 0.5, 3.0};
  const TridiagonalEigen eig = solve_tridiagonal(diag, sub);
  const std::size_t n = diag.size();
  ASSERT_EQ(eig.values.size(), n);
  ASSERT_EQ(eig.vectors.size(), n * n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_LT(residual(diag, sub, eig.values[j], &eig.vectors[j * n], n),
              1e-10)
        << "eigenpair " << j;
  }
}

TEST(Tridiagonal, EigenvectorsOrthonormal) {
  const std::vector<double> diag{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> sub{0.5, 0.5, 0.5};
  const TridiagonalEigen eig = solve_tridiagonal(diag, sub);
  const std::size_t n = diag.size();
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b) {
      double d = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        d += eig.vectors[a * n + i] * eig.vectors[b * n + i];
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-12);
    }
}

TEST(Tridiagonal, TraceAndSumPreserved) {
  const std::vector<double> diag{4.0, -1.0, 2.5, 3.0, 7.0, -2.0};
  const std::vector<double> sub{1.1, 0.3, -0.7, 2.0, 0.9};
  const auto vals = tridiagonal_eigenvalues(diag, sub);
  double trace = 0.0;
  for (const double d : diag) trace += d;
  double sum = 0.0;
  for (const double v : vals) sum += v;
  EXPECT_NEAR(sum, trace, 1e-10);
  // Sorted ascending.
  for (std::size_t i = 1; i < vals.size(); ++i)
    EXPECT_LE(vals[i - 1], vals[i]);
}

TEST(Tridiagonal, RejectsSizeMismatch) {
  EXPECT_THROW(tridiagonal_eigenvalues({1.0, 2.0}, {}), std::invalid_argument);
  EXPECT_THROW(solve_tridiagonal({1.0}, {0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace netpart::linalg
