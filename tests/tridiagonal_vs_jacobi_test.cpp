/// Cross-validation of the two dense eigensolvers on random symmetric
/// tridiagonal matrices: the QL implementation (used inside Lanczos) and
/// the Jacobi oracle must agree on eigenvalues AND produce eigenvectors
/// spanning the same spaces.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/jacobi.hpp"
#include "linalg/tridiagonal.hpp"
#include "linalg/vector_ops.hpp"

namespace netpart::linalg {
namespace {

class TridiagonalOracleTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(TridiagonalOracleTest, EigenvaluesMatchJacobi) {
  const auto [n, seed] = GetParam();
  std::vector<double> diag(n);
  std::vector<double> sub(n - 1);
  fill_random(diag, seed);
  fill_random(sub, seed + 101);
  for (double& d : diag) d *= 5.0;

  const std::vector<double> ql_values = tridiagonal_eigenvalues(diag, sub);

  std::vector<double> dense(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) dense[i * n + i] = diag[i];
  for (std::size_t i = 0; i + 1 < n; ++i) {
    dense[i * n + i + 1] = sub[i];
    dense[(i + 1) * n + i] = sub[i];
  }
  const DenseEigen oracle = jacobi_eigen(dense, n);

  ASSERT_EQ(ql_values.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(ql_values[i], oracle.values[i], 1e-9 * std::max(1.0, 5.0))
        << "eigenvalue " << i;
}

TEST_P(TridiagonalOracleTest, EigenvectorsDiagonalizeTheMatrix) {
  const auto [n, seed] = GetParam();
  std::vector<double> diag(n);
  std::vector<double> sub(n - 1);
  fill_random(diag, seed + 7);
  fill_random(sub, seed + 13);

  const TridiagonalEigen eig = solve_tridiagonal(diag, sub);
  // y_j^T T y_j == lambda_j and cross terms vanish.
  const auto apply = [&](const double* y, std::vector<double>& out) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = diag[i] * y[i];
      if (i > 0) out[i] += sub[i - 1] * y[i - 1];
      if (i + 1 < n) out[i] += sub[i] * y[i + 1];
    }
  };
  std::vector<double> ty(n);
  for (std::size_t j = 0; j < n; ++j) {
    apply(&eig.vectors[j * n], ty);
    for (std::size_t k = 0; k < n; ++k) {
      double cross = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        cross += eig.vectors[k * n + i] * ty[i];
      EXPECT_NEAR(cross, j == k ? eig.values[j] : 0.0, 1e-9)
          << "entry (" << j << "," << k << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TridiagonalOracleTest,
    ::testing::Combine(::testing::Values<std::size_t>(3, 8, 17, 32),
                       ::testing::Values<std::uint64_t>(11, 42)));

}  // namespace
}  // namespace netpart::linalg
