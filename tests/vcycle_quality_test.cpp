#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "cluster/clustering.hpp"
#include "cluster/multilevel.hpp"
#include "igmatch/igmatch.hpp"

/// \file vcycle_quality_test.cpp
/// The two correctness claims of the V-cycle engine, as tests:
///
///  1. Quality gate — on every paper benchmark the engine's ratio cut stays
///     within 5% of the flat `igmatch_partition` answer.  The engine exists
///     to buy scale; this pins down that it does not pay in quality.
///  2. Coarsest oracle — `MultilevelResult::coarsest_partition` is exactly
///     IG-Match run on the hand-contracted coarsest hypergraph.  The test
///     rebuilds the hierarchy level by level with `contract_with_info` and
///     demands bit-for-bit equality of every level and of the solution, so
///     any drift between the engine's internal contraction and the public
///     contraction contract is caught immediately.

namespace netpart {
namespace {

void expect_same_hypergraph(const Hypergraph& a, const Hypergraph& b,
                            const std::string& what) {
  ASSERT_EQ(a.num_modules(), b.num_modules()) << what;
  ASSERT_EQ(a.num_nets(), b.num_nets()) << what;
  ASSERT_EQ(a.num_pins(), b.num_pins()) << what;
  for (NetId n = 0; n < a.num_nets(); ++n) {
    ASSERT_EQ(a.net_weight(n), b.net_weight(n)) << what << " net " << n;
    const auto pa = a.pins(n);
    const auto pb = b.pins(n);
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()))
        << what << " net " << n;
  }
}

TEST(VcycleQuality, WithinFivePercentOfFlatOnEveryPaperBenchmark) {
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    const Hypergraph h = make_benchmark(spec.name).hypergraph;
    const IgMatchResult flat = igmatch_partition(h);
    ASSERT_TRUE(flat.partition.is_proper()) << spec.name;

    MultilevelOptions options;
    options.vcycles = 1;
    const MultilevelResult ml = multilevel_partition(h, options);
    ASSERT_TRUE(ml.partition.is_proper()) << spec.name;

    // The 5% gate of the bench, enforced as a test so a quality regression
    // fails CI even when nobody reruns the bench.
    EXPECT_LE(ml.ratio, flat.ratio * 1.05 + 1e-12)
        << spec.name << ": V-cycle ratio " << ml.ratio
        << " exceeds flat igmatch " << flat.ratio << " by more than 5%";
  }
}

TEST(VcycleQuality, PaperBenchmarksSitInsideDirectSolveBudget) {
  // Every paper instance is orders of magnitude under the default
  // direct-solve pair budget, so the engine answers with flat IG-Match
  // plus refinement — which is why the quality gate above is robust and
  // not a tuning accident.  This pins the routing decision itself.
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    const Hypergraph h = make_benchmark(spec.name).hypergraph;
    const MultilevelResult r = multilevel_partition(h, {});
    EXPECT_EQ(r.levels, 0) << spec.name;
    EXPECT_EQ(r.coarsest_modules, h.num_modules()) << spec.name;
  }
}

TEST(VcycleQuality, CoarsestPartitionMatchesHandContractedOracle) {
  // Force real hierarchies on three paper circuits and replay the engine's
  // coarsening by hand through the public contraction API.
  for (const std::string name : {"bm1", "Test02", "Prim2"}) {
    const Hypergraph h = make_benchmark(name).hypergraph;

    MultilevelOptions options;
    options.direct_pair_budget = 0;  // force coarsening
    options.coarsen_to = 64;
    options.vcycles = 0;
    const MultilevelResult result = multilevel_partition(h, options);

    const MultilevelHierarchy hier = coarsen_hierarchy(h, options);
    ASSERT_EQ(result.levels, static_cast<std::int32_t>(hier.levels.size()))
        << name;
    ASSERT_GT(result.levels, 0) << name << ": oracle needs a hierarchy";

    // Replay every level: contracting the previous level's hypergraph with
    // the recorded map must reproduce the recorded coarse level exactly —
    // hypergraph, accumulated module weights, pins, weights, everything.
    const Hypergraph* fine = &h;
    std::vector<std::int64_t> fine_weights;  // empty = unit at level 0
    for (std::size_t i = 0; i < hier.levels.size(); ++i) {
      const MultilevelLevel& level = hier.levels[i];
      const Contraction hand =
          contract_with_info(*fine, level.map, fine_weights);
      expect_same_hypergraph(hand.coarse, level.coarse,
                             name + " level " + std::to_string(i));
      ASSERT_EQ(hand.module_weights, level.module_weights)
          << name << " level " << i;
      fine = &level.coarse;
      fine_weights = level.module_weights;
    }

    // The coarsest solve is IG-Match on that replayed instance, nothing
    // more: the engine's reported coarsest_partition must equal it
    // bit-for-bit.
    const Hypergraph& coarsest = hier.coarsest(h);
    ASSERT_EQ(result.coarsest_modules, coarsest.num_modules()) << name;
    const IgMatchResult oracle = igmatch_partition(coarsest, options.igmatch);
    ASSERT_TRUE(oracle.partition.is_proper()) << name;
    ASSERT_EQ(result.coarsest_partition.num_modules(),
              oracle.partition.num_modules())
        << name;
    for (ModuleId m = 0; m < coarsest.num_modules(); ++m)
      ASSERT_EQ(result.coarsest_partition.side(m), oracle.partition.side(m))
          << name << " coarse module " << m;
  }
}

}  // namespace
}  // namespace netpart
