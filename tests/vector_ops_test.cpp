#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace netpart::linalg {
namespace {

TEST(VectorOps, Dot) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, Norm) {
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm(x), 5.0);
}

TEST(VectorOps, Axpy) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, Scale) {
  std::vector<double> x{1.0, -2.0};
  scale(x, -3.0);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(VectorOps, NormalizeReturnsOldNorm) {
  std::vector<double> x{0.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(normalize(x), 5.0);
  EXPECT_NEAR(norm(x), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeZeroVectorIsSafe) {
  std::vector<double> x{0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(x), 0.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(VectorOps, OrthogonalizeAgainstUnitVector) {
  std::vector<double> q{1.0, 0.0};
  std::vector<double> x{3.0, 7.0};
  orthogonalize_against(x, q);
  EXPECT_NEAR(x[0], 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(x[1], 7.0);
  EXPECT_NEAR(dot(x, q), 0.0, 1e-15);
}

TEST(VectorOps, FillRandomDeterministicAndBounded) {
  std::vector<double> a(64);
  std::vector<double> b(64);
  fill_random(a, 99);
  fill_random(b, 99);
  EXPECT_EQ(a, b);
  for (const double v : a) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
  std::vector<double> c(64);
  fill_random(c, 100);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace netpart::linalg
