#include "graph/weighted_graph.hpp"

#include <gtest/gtest.h>

namespace netpart {
namespace {

TEST(WeightedGraph, EmptyGraph) {
  const WeightedGraph g = WeightedGraph::from_edges(3, {});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.adjacency_nonzeros(), 0);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(WeightedGraph, EdgesMirroredAndSorted) {
  const WeightedGraph g =
      WeightedGraph::from_edges(4, {{2, 0, 1.0}, {0, 3, 2.0}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.adjacency_nonzeros(), 4);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 2);
  EXPECT_EQ(n0[1], 3);
  EXPECT_DOUBLE_EQ(g.edge_weight(3, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 0.0);
}

TEST(WeightedGraph, ParallelEdgesMerged) {
  const WeightedGraph g =
      WeightedGraph::from_edges(2, {{0, 1, 1.5}, {1, 0, 2.5}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 4.0);
}

TEST(WeightedGraph, DegreeWeight) {
  const WeightedGraph g =
      WeightedGraph::from_edges(3, {{0, 1, 2.0}, {0, 2, 3.0}});
  EXPECT_DOUBLE_EQ(g.degree_weight(0), 5.0);
  EXPECT_DOUBLE_EQ(g.degree_weight(1), 2.0);
}

TEST(WeightedGraph, RejectsBadEdges) {
  EXPECT_THROW(WeightedGraph::from_edges(2, {{0, 2, 1.0}}),
               std::out_of_range);
  EXPECT_THROW(WeightedGraph::from_edges(2, {{1, 1, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(WeightedGraph::from_edges(2, {{0, 1, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(WeightedGraph::from_edges(2, {{0, 1, -3.0}}),
               std::invalid_argument);
}

TEST(WeightedGraph, LaplacianRowsSumToZero) {
  const WeightedGraph g = WeightedGraph::from_edges(
      4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 0.5}, {0, 3, 1.5}});
  const linalg::CsrMatrix q = g.laplacian();
  EXPECT_TRUE(q.is_symmetric());
  for (std::int32_t r = 0; r < q.dim(); ++r) {
    double sum = 0.0;
    for (const double v : q.row_values(r)) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-14);
  }
  EXPECT_DOUBLE_EQ(q.at(0, 0), g.degree_weight(0));
  EXPECT_DOUBLE_EQ(q.at(0, 1), -1.0);
}

TEST(WeightedGraph, ComponentCount) {
  const WeightedGraph one =
      WeightedGraph::from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  EXPECT_EQ(one.num_components(), 1);
  const WeightedGraph two =
      WeightedGraph::from_edges(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  EXPECT_EQ(two.num_components(), 2);
  const WeightedGraph isolated = WeightedGraph::from_edges(3, {{0, 1, 1.0}});
  EXPECT_EQ(isolated.num_components(), 2);
}

}  // namespace
}  // namespace netpart
