/// Tests for multiplicity-weighted nets (Section 1.1: "the multiplicity or
/// importance of a wiring connection") across the stack: hypergraph
/// storage, cut metrics, the FM engine's weighted gains, and the net-model
/// expansions.  A net of weight w must behave exactly like w parallel
/// copies wherever weighted quantities are defined.

#include <gtest/gtest.h>

#include "fm/fm_engine.hpp"
#include "fm/fm_partition.hpp"
#include "graph/clique_model.hpp"
#include "graph/intersection_graph.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "hypergraph/hypergraph.hpp"

namespace netpart {
namespace {

TEST(WeightedNets, StorageAndTotals) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 4);
  b.add_net({1, 2});
  const Hypergraph h = b.build();
  EXPECT_EQ(h.net_weight(0), 4);
  EXPECT_EQ(h.net_weight(1), 1);
  EXPECT_EQ(h.total_net_weight(), 5);
  EXPECT_FALSE(h.is_unweighted());
  EXPECT_THROW(b.add_net({0, 1}, 0), std::invalid_argument);
}

TEST(WeightedNets, DefaultIsUnweighted) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  EXPECT_TRUE(b.build().is_unweighted());
}

TEST(WeightedNets, WeightedCutMetrics) {
  HypergraphBuilder b(4);
  b.add_net({0, 1}, 3);  // uncut under {0,1}|{2,3}
  b.add_net({1, 2}, 5);  // cut
  b.add_net({2, 3});     // uncut
  b.add_net({0, 3}, 2);  // cut
  const Hypergraph h = b.build();
  Partition p(4);
  p.assign(2, Side::kRight);
  p.assign(3, Side::kRight);
  EXPECT_EQ(net_cut(h, p), 2);
  EXPECT_EQ(weighted_net_cut(h, p), 7);
  EXPECT_DOUBLE_EQ(weighted_ratio_cut(h, p), 7.0 / 4.0);
}

TEST(WeightedNets, IncrementalTrackerMatchesBatch) {
  HypergraphBuilder b(4);
  b.add_net({0, 1}, 3);
  b.add_net({1, 2}, 5);
  b.add_net({2, 3});
  b.add_net({0, 2, 3}, 2);
  const Hypergraph h = b.build();
  IncrementalCut tracker(h, Partition(4));
  for (const ModuleId m : {3, 2, 1, 3, 0}) {
    tracker.flip(m);
    EXPECT_EQ(tracker.cut(), net_cut(h, tracker.partition()));
    EXPECT_EQ(tracker.weighted_cut(),
              weighted_net_cut(h, tracker.partition()));
  }
}

TEST(WeightedNets, EquivalentToParallelCopiesInFm) {
  // Weighted instance vs the same instance with the net literally
  // duplicated: FM must produce identical weighted cuts from the same
  // start.
  HypergraphBuilder weighted(6);
  weighted.add_net({0, 1}, 2);
  weighted.add_net({1, 2}, 3);
  weighted.add_net({3, 4});
  weighted.add_net({4, 5}, 2);
  weighted.add_net({2, 3});
  const Hypergraph hw = weighted.build();

  HypergraphBuilder copies(6);
  for (int i = 0; i < 2; ++i) copies.add_net({0, 1});
  for (int i = 0; i < 3; ++i) copies.add_net({1, 2});
  copies.add_net({3, 4});
  for (int i = 0; i < 2; ++i) copies.add_net({4, 5});
  copies.add_net({2, 3});
  const Hypergraph hc = copies.build();

  const Partition start = random_balanced_partition(6, 77);
  FmEngine ew(hw);
  ew.reset(start);
  FmEngine ec(hc);
  ec.reset(start);
  EXPECT_EQ(ew.weighted_cut(), static_cast<std::int64_t>(ec.cut()));
  ew.pass_ratio_cut();
  ec.pass_ratio_cut();
  EXPECT_EQ(ew.weighted_cut(), static_cast<std::int64_t>(ec.cut()));
  EXPECT_DOUBLE_EQ(ew.ratio(), ec.ratio());
}

TEST(WeightedNets, CliqueModelScalesWithMultiplicity) {
  HypergraphBuilder b(2);
  b.add_net({0, 1}, 5);
  const WeightedGraph g = clique_expansion(b.build());
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 5.0);
}

TEST(WeightedNets, IntersectionGraphScalesWithProduct) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 2);   // net a, weight 2
  b.add_net({1, 2}, 3);   // net b, weight 3
  const Hypergraph h = b.build();
  // Unweighted paper formula: shared module 1 with d=2, sizes 2 and 2:
  // 1/1 * (1/2 + 1/2) = 1; multiplicity scaling: * 2 * 3 = 6.
  EXPECT_NEAR(intersection_graph(h).edge_weight(0, 1), 6.0, 1e-14);
}

TEST(WeightedNets, InduceAndContractPreserveWeights) {
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2}, 9);
  const Hypergraph h = b.build();
  const std::vector<ModuleId> keep{0, 1};
  const Hypergraph sub = induce_subhypergraph(h, keep);
  ASSERT_EQ(sub.num_nets(), 1);
  EXPECT_EQ(sub.net_weight(0), 9);
}

TEST(WeightedNets, HeavyNetDominatesFmDecision) {
  // Two candidate cut positions: one cuts a weight-10 net, the other a
  // weight-1 net.  Weighted FM must pick the light one.
  HypergraphBuilder b(4);
  b.add_net({0, 1}, 10);
  b.add_net({1, 2}, 1);
  b.add_net({2, 3}, 10);
  const Hypergraph h = b.build();
  FmOptions options;
  options.num_starts = 4;
  const FmRunResult r = ratio_cut_fm(h, options);
  // Best split is {0,1} | {2,3}: cuts only the weight-1 net.
  EXPECT_EQ(r.weighted_cut, 1);
  EXPECT_EQ(r.partition.side(0), r.partition.side(1));
  EXPECT_EQ(r.partition.side(2), r.partition.side(3));
}

}  // namespace
}  // namespace netpart
