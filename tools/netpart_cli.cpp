/// netpart — command-line front end for the library.
///
/// Subcommands:
///   stats     <input>                      structural statistics
///   generate  <circuit> <out.hgr>          materialize a benchmark circuit
///   partition <input> [algo] [out.part]    bipartition with any algorithm
///   multiway  <input> <max-block> [algo]   recursive k-way decomposition
///   sparsity  <input>                      clique vs IG nonzero counts
///   list                                   list built-in circuits/algorithms
///
/// <input> is either the name of a built-in benchmark circuit (bm1, 19ks,
/// Prim1, Prim2, Test02..Test06) or a path to an hMETIS .hgr file.
///
/// Flags (anywhere on the command line):
///   --threads <n>         worker threads (0 = auto); default: hardware
///                         concurrency, overridable via NETPART_THREADS
///   --repartition <file>  (partition, igmatch only) apply the ECO edit
///                         script and repartition incrementally at each
///                         `commit` (warm-start spectral cache + IG deltas)
///   --trace               print the phase trace tree and metrics tables
///   --trace-out <file>    write the run's span tree as Chrome trace-event
///                         JSON (load in ui.perfetto.dev / chrome://tracing)
///   --metrics-out <file>  export one metrics record for this run
///   --metrics-format <f>  encoding for --metrics-out: `json` (default,
///                         appends one NDJSON record) or `prom` (rewrites
///                         the file as a Prometheus text exposition)
///   --profile-out <file>  run the span-attributed sampling profiler for the
///                         duration of the command and write folded stacks
///                         (flamegraph.pl / speedscope input)
///   --events-out <file>   record solver convergence events (Lanczos
///                         residuals, FM pass gains, sweep curves,
///                         augmenting-path lengths) as NDJSON
///   --version             print the library version and exit
///   --help                print usage and exit

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "core/metrics_report.hpp"
#include "hypergraph/content_hash.hpp"
#include "core/multiway.hpp"
#include "core/partitioner.hpp"
#include "core/table.hpp"
#include "graph/sparsity.hpp"
#include "hypergraph/cut_metrics.hpp"
#include "hypergraph/stats.hpp"
#include "io/dot_io.hpp"
#include "io/netlist_io.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/prom_export.hpp"
#include "obs/trace_export.hpp"
#include "parallel/thread_pool.hpp"
#include "repart/edit_script.hpp"
#include "repart/session.hpp"

#ifndef NETPART_VERSION
#define NETPART_VERSION "unknown"
#endif

namespace {

using namespace netpart;

// Exit codes (documented in --help): distinct classes so scripts and the
// server smoke stage can tell *why* a run failed without scraping stderr.
constexpr int kExitOk = 0;          ///< success
constexpr int kExitRuntime = 1;     ///< I/O failure, unknown circuit, ...
constexpr int kExitUsage = 2;       ///< bad command line
constexpr int kExitParse = 3;       ///< malformed input file
constexpr int kExitInfeasible = 4;  ///< improper partition / failed verify

void print_usage(std::ostream& os) {
  os << "usage: netpart <command> [args] [flags]\n"
        "  stats     <input>\n"
        "  generate  <circuit> <out.hgr>\n"
        "  partition <input> [algorithm] [out.part]\n"
        "  multiway  <input> <max-block-size> [algorithm]\n"
        "  sparsity  <input>\n"
        "  verify    <input> <partition.part>\n"
        "  dot       <input> <out.dot>\n"
        "  list\n"
        "flags:\n"
        "  --threads <n>         worker threads; 0 = auto (default: hardware\n"
        "                        concurrency, env override NETPART_THREADS).\n"
        "                        Results are identical for every value.\n"
        "  --repartition <file>  (partition, igmatch only) apply the ECO\n"
        "                        edit script, repartitioning incrementally\n"
        "                        at each 'commit'\n"
        "  --trace               print phase trace tree and metrics tables\n"
        "  --trace-out <file>    write Chrome trace-event JSON for the run\n"
        "                        (open in ui.perfetto.dev)\n"
        "  --metrics-out <file>  export one metrics record per run\n"
        "  --metrics-format <f>  json (default, append NDJSON) or prom\n"
        "                        (rewrite as Prometheus text exposition)\n"
        "  --profile-out <file>  sample the run's span stacks and write\n"
        "                        folded stacks (flamegraph.pl / speedscope);\n"
        "                        '-' streams them to stdout\n"
        "  --events-out <file>   write solver convergence events (Lanczos\n"
        "                        residuals, FM gains, sweep curves) as NDJSON;\n"
        "                        '-' streams to stdout (at most one of\n"
        "                        --profile-out/--events-out may use '-')\n"
        "  --ml-coarsen-to <n>   multilevel/V-cycle: stop coarsening once\n"
        "                        the instance has at most n modules\n"
        "                        (default 200)\n"
        "  --ml-vcycles <n>      multilevel/V-cycle: improvement-guarded\n"
        "                        extra V-cycles after the first\n"
        "                        uncoarsening (default 1)\n"
        "  --ml-threshold <n>    igmatch runs on inputs with at least n\n"
        "                        modules take the multilevel V-cycle cold\n"
        "                        path (default 100000; 0 = always flat).\n"
        "                        Applies to partition, multiway splits, and\n"
        "                        --repartition sessions\n"
        "  --hash                print the input's canonical content hash\n"
        "                        (FNV-1a over pins/nets; the netpartd result\n"
        "                        cache keys by this)\n"
        "  --version             print version and exit\n"
        "  --help                print this message and exit\n"
        "<input> = built-in circuit name or .hgr file path\n"
        "exit codes:\n"
        "  0  success\n"
        "  1  runtime error (unreadable file, unknown circuit, failed edit)\n"
        "  2  usage error (bad command, flag, or argument)\n"
        "  3  parse error (malformed .hgr / partition / edit script)\n"
        "  4  infeasible result (improper partition, verify mismatch)\n";
}

int usage() {
  print_usage(std::cerr);
  return kExitUsage;
}

/// Flags extracted from the command line before positional dispatch.
struct CliFlags {
  bool trace = false;
  std::string trace_out;
  std::string metrics_out;
  std::string metrics_format = "json";
  std::string profile_out;
  std::string events_out;
  std::string repartition;
};

/// --hash: every load() announces the input's content hash.
bool g_print_hash = false;

/// Multilevel V-cycle knobs (-1 = keep the library default).
struct MlFlags {
  int coarsen_to = -1;
  int vcycles = -1;
  int threshold = -1;
};
MlFlags g_ml;

/// Fold the --ml-* flags into a partitioner config.
void apply_ml_flags(PartitionerConfig& config) {
  if (g_ml.coarsen_to >= 0) config.multilevel_coarsen_to = g_ml.coarsen_to;
  if (g_ml.vcycles >= 0) config.multilevel_vcycles = g_ml.vcycles;
  if (g_ml.threshold >= 0) config.vcycle_threshold = g_ml.threshold;
}

/// Load a built-in circuit by name, or an .hgr file by path.
Hypergraph load(const std::string& input) {
  Hypergraph h = [&input] {
    for (const BenchmarkSpec& spec : benchmark_suite())
      if (spec.name == input) return make_benchmark(input).hypergraph;
    return io::read_hgr_file(input);
  }();
  if (g_print_hash)
    std::cout << "content-hash " << format_content_hash(netlist_content_hash(h))
              << " (" << input << ")\n";
  return h;
}

int cmd_stats(const std::string& input) {
  const Hypergraph h = load(input);
  std::cout << compute_stats(h);
  std::cout << "connected:   " << (h.is_connected() ? "yes" : "no") << '\n';
  return 0;
}

int cmd_generate(const std::string& circuit, const std::string& out) {
  const GeneratedCircuit g = make_benchmark(circuit);
  io::write_hgr_file(out, g.hypergraph);
  std::cout << "wrote " << circuit << " (" << g.hypergraph.num_modules()
            << " modules, " << g.hypergraph.num_nets() << " nets) to " << out
            << '\n';
  return 0;
}

/// Write a partition to `out` (empty = skip); returns 0 / 1 like main.
int write_partition_file(const Partition& p, const std::string& out) {
  if (out.empty()) return 0;
  std::ofstream stream(out);
  if (!stream) {
    std::cerr << "cannot open " << out << '\n';
    return 1;
  }
  io::write_partition(stream, p);
  std::cout << "  partition written to " << out << '\n';
  return 0;
}

/// `partition --repartition <edits>`: incremental ECO repartitioning.
int cmd_repartition(const std::string& input, const std::string& algorithm,
                    const std::string& out, const std::string& edits) {
  if (parse_algorithm(algorithm) != Algorithm::kIgMatch) {
    std::cerr << "error: --repartition supports only the igmatch algorithm\n";
    return 2;
  }
  const Hypergraph h = load(input);
  const repart::EditScript script = repart::read_edit_script_file(edits);
  repart::RepartitionOptions options;
  if (g_ml.coarsen_to >= 0) options.vcycle.coarsen_to = g_ml.coarsen_to;
  if (g_ml.vcycles >= 0) options.vcycle.vcycles = g_ml.vcycles;
  if (g_ml.threshold >= 0) options.vcycle_threshold = g_ml.threshold;
  repart::RepartitionSession session(h, options);
  repart::EditScriptApplier applier(session.netlist());

  repart::RepartitionResult r = session.repartition();
  std::cout << "incremental IG-Match on " << input << " ("
            << script.batches.size() << " edit batches from " << edits
            << "):\n"
            << "  initial   cut " << r.nets_cut << ", ratio "
            << format_ratio(r.ratio) << " (cold, "
            << r.lanczos_iterations << " Lanczos iters)\n";
  for (std::size_t i = 0; i < script.batches.size(); ++i) {
    applier.apply(script.batches[i]);
    r = session.repartition();
    std::cout << "  batch " << i + 1 << "   cut " << r.nets_cut << ", ratio "
              << format_ratio(r.ratio) << " ("
              << (r.warm_started ? "warm" : "cold") << ", "
              << r.lanczos_iterations << " Lanczos iters, IG rows "
              << r.ig_rows_rebuilt << " rebuilt / " << r.ig_rows_reused
              << " reused, " << r.sweep_ranks_evaluated << "/"
              << r.sweep_ranks_total << " splits"
              << (r.used_previous_partition ? ", kept previous" : "")
              << ")\n";
  }
  const Hypergraph& final_h = session.hypergraph();
  std::cout << "  final     " << final_h.num_modules() << " modules, "
            << final_h.num_nets() << " nets, areas "
            << r.partition.size(Side::kLeft) << ":"
            << r.partition.size(Side::kRight) << '\n';
  if (!r.partition.is_proper()) {
    std::cerr << "error: final partition is improper (one side empty)\n";
    return kExitInfeasible;
  }
  return write_partition_file(r.partition, out);
}

int cmd_partition(const std::string& input, const std::string& algorithm,
                  const std::string& out) {
  const Hypergraph h = load(input);
  PartitionerConfig config;
  config.algorithm = parse_algorithm(algorithm);
  apply_ml_flags(config);
  const PartitionResult r = run_partitioner(h, config);
  std::cout << r.algorithm_name << " on " << input
            << (r.via_multilevel ? " (multilevel V-cycle)" : "") << ":\n"
            << "  areas     " << r.left_size << ":" << r.right_size << '\n'
            << "  nets cut  " << r.nets_cut << '\n'
            << "  ratio cut " << format_ratio(r.ratio) << '\n'
            << "  runtime   " << r.runtime_ms << " ms\n";
  if (r.matching_bound >= 0)
    std::cout << "  MM bound  " << r.matching_bound << '\n';
  if (!r.partition.is_proper()) {
    std::cerr << "error: partition is improper (one side empty)\n";
    return kExitInfeasible;
  }
  if (!out.empty()) {
    std::ofstream stream(out);
    if (!stream) {
      std::cerr << "cannot open " << out << '\n';
      return 1;
    }
    io::write_partition(stream, r.partition);
    std::cout << "  partition written to " << out << '\n';
  }
  return 0;
}

int cmd_multiway(const std::string& input, std::int32_t max_block,
                 const std::string& algorithm) {
  const Hypergraph h = load(input);
  MultiwayOptions options;
  options.max_block_size = max_block;
  options.bipartitioner.algorithm = parse_algorithm(algorithm);
  apply_ml_flags(options.bipartitioner);
  const MultiwayResult r = multiway_partition(h, options);
  std::cout << "multiway decomposition of " << input << " (blocks <= "
            << max_block << " modules, " << algorithm << " splits):\n"
            << "  blocks            " << r.partition.num_blocks() << '\n'
            << "  splits performed  " << r.splits_performed << '\n'
            << "  spanning nets     " << r.nets_spanning << '\n'
            << "  connectivity-1    " << r.connectivity_cost << '\n';
  std::int32_t largest = 0;
  for (std::int32_t b = 0; b < r.partition.num_blocks(); ++b)
    largest = std::max(largest, r.partition.block_size(b));
  std::cout << "  largest block     " << largest << " modules\n";
  return 0;
}

int cmd_sparsity(const std::string& input) {
  const Hypergraph h = load(input);
  const SparsityComparison c = compare_sparsity(h);
  std::cout << "clique-model adjacency:      " << c.clique_dimension << " x "
            << c.clique_dimension << ", " << c.clique_nonzeros
            << " nonzeros\n"
            << "intersection-graph adjacency: " << c.intersection_dimension
            << " x " << c.intersection_dimension << ", "
            << c.intersection_nonzeros << " nonzeros\n"
            << "ratio: " << c.ratio() << "x\n";
  return 0;
}

int cmd_dot(const std::string& input, const std::string& out_path) {
  const Hypergraph h = load(input);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << '\n';
    return 1;
  }
  io::DotOptions options;
  options.max_net_size = 16;  // keep rail hairballs out of the drawing
  io::write_dot_netlist(out, h, options);
  std::cout << "wrote DOT netlist of " << input << " to " << out_path
            << " (render: neato -Tsvg " << out_path << " -o out.svg)\n";
  return 0;
}

int cmd_verify(const std::string& input, const std::string& part_path) {
  const Hypergraph h = load(input);
  std::ifstream stream(part_path);
  if (!stream) {
    std::cerr << "cannot open " << part_path << '\n';
    return 1;
  }
  const Partition p = io::read_partition(stream);
  if (p.num_modules() != h.num_modules()) {
    std::cerr << "partition has " << p.num_modules() << " entries but "
              << input << " has " << h.num_modules() << " modules\n";
    return kExitInfeasible;
  }
  const std::int32_t cut = net_cut(h, p);
  std::cout << "partition of " << input << " from " << part_path << ":\n"
            << "  areas     " << p.size(Side::kLeft) << ":"
            << p.size(Side::kRight) << '\n'
            << "  nets cut  " << cut << '\n'
            << "  ratio cut "
            << format_ratio(ratio_cut_value(cut, p.size(Side::kLeft),
                                            p.size(Side::kRight)))
            << '\n'
            << "  proper    " << (p.is_proper() ? "yes" : "NO") << '\n';
  return p.is_proper() ? kExitOk : kExitInfeasible;
}

int cmd_list() {
  std::cout << "built-in circuits:";
  for (const BenchmarkSpec& spec : benchmark_suite())
    std::cout << ' ' << spec.name;
  std::cout << "\nalgorithms: igmatch igmatch-recursive igmatch-refined "
               "igvote eig1 rcut fm kl multilevel sa\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> raw(argv + 1, argv + argc);

  // Separate --flags (accepted anywhere) from positional arguments; any
  // unrecognized flag is a hard error so typos never silently degrade to
  // defaults.
  CliFlags flags;
  std::vector<std::string> args;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& arg = raw[i];
    if (arg.size() < 2 || arg[0] != '-' || arg[1] != '-') {
      args.push_back(arg);
      continue;
    }
    if (arg == "--help") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--version") {
      std::cout << "netpart " << NETPART_VERSION << '\n';
      return 0;
    }
    if (arg == "--trace") {
      flags.trace = true;
      continue;
    }
    if (arg == "--hash") {
      g_print_hash = true;
      continue;
    }
    if (arg == "--metrics-out") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --metrics-out requires a file argument\n";
        return 2;
      }
      flags.metrics_out = raw[++i];
      continue;
    }
    if (arg == "--metrics-format") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --metrics-format requires 'json' or 'prom'\n";
        return 2;
      }
      flags.metrics_format = raw[++i];
      if (flags.metrics_format != "json" && flags.metrics_format != "prom") {
        std::cerr << "error: --metrics-format must be 'json' or 'prom'\n";
        return 2;
      }
      continue;
    }
    if (arg == "--profile-out") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --profile-out requires a file argument\n";
        return 2;
      }
      flags.profile_out = raw[++i];
      continue;
    }
    if (arg == "--events-out") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --events-out requires a file argument\n";
        return 2;
      }
      flags.events_out = raw[++i];
      continue;
    }
    if (arg == "--trace-out") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --trace-out requires a file argument\n";
        return 2;
      }
      flags.trace_out = raw[++i];
      continue;
    }
    if (arg == "--repartition") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --repartition requires an edit-script file\n";
        return 2;
      }
      flags.repartition = raw[++i];
      continue;
    }
    if (arg == "--threads") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --threads requires a count argument\n";
        return 2;
      }
      int threads = -1;
      try {
        threads = std::stoi(raw[++i]);
      } catch (const std::exception&) {
        threads = -1;
      }
      if (threads < 0) {
        std::cerr << "error: --threads requires a non-negative integer\n";
        return 2;
      }
      parallel::ThreadPool::instance().configure(threads);
      continue;
    }
    if (arg == "--ml-coarsen-to" || arg == "--ml-vcycles" ||
        arg == "--ml-threshold") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: " << arg << " requires an integer argument\n";
        return 2;
      }
      int value = -1;
      try {
        value = std::stoi(raw[++i]);
      } catch (const std::exception&) {
        value = -1;
      }
      if (value < 0 || (arg == "--ml-coarsen-to" && value < 4)) {
        std::cerr << "error: " << arg << " requires a non-negative integer"
                  << (arg == "--ml-coarsen-to" ? " >= 4" : "") << "\n";
        return 2;
      }
      if (arg == "--ml-coarsen-to") g_ml.coarsen_to = value;
      if (arg == "--ml-vcycles") g_ml.vcycles = value;
      if (arg == "--ml-threshold") g_ml.threshold = value;
      continue;
    }
    std::cerr << "error: unknown flag '" << arg
              << "' (see netpart --help)\n";
    return 2;
  }
  if (args.empty()) return usage();
  if (flags.profile_out == "-" && flags.events_out == "-") {
    std::cerr << "error: --profile-out - and --events-out - both stream to "
                 "stdout, interleaving folded stacks with NDJSON events; "
                 "send at most one of them to -\n";
    return 2;
  }

  const bool collect = flags.trace || !flags.metrics_out.empty() ||
                       !flags.trace_out.empty();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  if (collect) {
    registry.set_enabled(true);
    // Run label: the positionals after the command, e.g. "bm1/igmatch".
    std::string label;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (i > 1) label += '/';
      label += args[i];
    }
    registry.set_run_label(label);
  }
  // Arm the profiler / convergence-event ring around the whole command, so
  // the folded profile and the NDJSON event series cover every phase.  Both
  // are no-ops under -DNETPART_OBS=OFF (the output files end up empty).
  if (!flags.profile_out.empty() && !obs::Profiler::instance().start()) {
    std::cerr << "error: cannot start the sampling profiler\n";
    return 1;
  }
  if (!flags.events_out.empty()) obs::EventRing::instance().arm();

  int rc = 2;
  bool dispatched = true;
  try {
    const std::string& command = args[0];
    if (command == "stats" && args.size() == 2)
      rc = cmd_stats(args[1]);
    else if (command == "generate" && args.size() == 3)
      rc = cmd_generate(args[1], args[2]);
    else if (command == "partition" && args.size() >= 2 && args.size() <= 4) {
      const std::string algorithm = args.size() > 2 ? args[2] : "igmatch";
      const std::string out = args.size() > 3 ? args[3] : "";
      rc = flags.repartition.empty()
               ? cmd_partition(args[1], algorithm, out)
               : cmd_repartition(args[1], algorithm, out, flags.repartition);
    }
    else if (command == "multiway" && args.size() >= 3 && args.size() <= 4)
      rc = cmd_multiway(args[1], std::stoi(args[2]),
                        args.size() > 3 ? args[3] : "igmatch");
    else if (command == "sparsity" && args.size() == 2)
      rc = cmd_sparsity(args[1]);
    else if (command == "verify" && args.size() == 3)
      rc = cmd_verify(args[1], args[2]);
    else if (command == "dot" && args.size() == 3)
      rc = cmd_dot(args[1], args[2]);
    else if (command == "list")
      rc = cmd_list();
    else
      dispatched = false;
  } catch (const io::ParseError& e) {
    std::cerr << "parse error: " << e.what() << '\n';
    return kExitParse;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitRuntime;
  }
  if (!dispatched) return usage();

  if (!flags.profile_out.empty()) {
    obs::Profiler& profiler = obs::Profiler::instance();
    profiler.stop();
    const obs::ProfileSnapshot profile = profiler.snapshot();
    if (flags.profile_out == "-") {
      // Stream the folded stacks verbatim; the summary goes to stderr so
      // `netpart ... --profile-out - | flamegraph.pl` sees only the data.
      std::cout << profile.to_folded();
      std::cerr << "profile: " << profile.total_samples << " samples, "
                << static_cast<int>(profile.attribution() * 100.0 + 0.5)
                << "% attributed\n";
    } else {
      std::ofstream out(flags.profile_out, std::ios::trunc);
      if (!out) {
        std::cerr << "cannot open " << flags.profile_out << '\n';
        return 1;
      }
      out << profile.to_folded();
      std::cout << "profile written to " << flags.profile_out << " ("
                << profile.total_samples << " samples, "
                << static_cast<int>(profile.attribution() * 100.0 + 0.5)
                << "% attributed; feed to flamegraph.pl or speedscope)\n";
    }
  }
  if (!flags.events_out.empty()) {
    obs::EventRing& ring = obs::EventRing::instance();
    ring.disarm();
    if (flags.events_out == "-") {
      std::cout << ring.drain_ndjson();
      std::cerr << "events: " << ring.recorded() << " recorded, "
                << ring.dropped() << " dropped\n";
    } else {
      std::ofstream out(flags.events_out, std::ios::trunc);
      if (!out) {
        std::cerr << "cannot open " << flags.events_out << '\n';
        return 1;
      }
      out << ring.drain_ndjson();
      std::cout << "convergence events written to " << flags.events_out
                << " (" << ring.recorded() << " recorded, " << ring.dropped()
                << " dropped)\n";
    }
  }

  if (collect) {
    const obs::MetricsSnapshot snapshot = registry.snapshot();
    if (flags.trace) {
      std::cout << "\ntrace:\n";
      print_span_tree(snapshot, std::cout);
      print_metrics_tables(snapshot, std::cout);
    }
    if (!flags.metrics_out.empty()) {
      // JSON records append (many runs per file); a Prometheus exposition
      // is a complete scrape body, so prom mode rewrites the file.
      const bool prom = flags.metrics_format == "prom";
      std::ofstream out(flags.metrics_out,
                        prom ? std::ios::trunc : std::ios::app);
      if (!out) {
        std::cerr << "cannot open " << flags.metrics_out << '\n';
        return 1;
      }
      if (prom)
        out << obs::to_prometheus(snapshot);
      else
        out << snapshot.to_json() << '\n';
    }
    if (!flags.trace_out.empty()) {
      std::ofstream out(flags.trace_out, std::ios::trunc);
      if (!out) {
        std::cerr << "cannot open " << flags.trace_out << '\n';
        return 1;
      }
      out << obs::to_chrome_trace(snapshot) << '\n';
      std::cout << "trace written to " << flags.trace_out
                << " (open in ui.perfetto.dev)\n";
    }
  }
  return rc;
}
