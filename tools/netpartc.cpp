/// netpartc — command-line client for netpartd (docs/SERVER.md).
///
/// usage: netpartc [--socket <path> | --tcp <host:port>] <op> [args] [flags]
///   ping
///   load      <session> <circuit-or-hgr-path>
///   partition <session> [--no-cache] [--trace] [--events] [--timeout <ms>]
///   edit      <session> <edit-script-file>
///   unload    <session>
///   sessions
///   metrics
///   stats     [--prom | --json]
///   profile   start|stop|dump [--json]
///   debug     flightrec|postmortem
///   shutdown
///   raw       <json-request-line>        (sent verbatim)
///
/// Every constructed request (everything except `raw`) carries a freshly
/// generated 128-bit trace_id and 64-bit span_id, so any invocation can be
/// correlated with the server's access log, flight recorder, Chrome trace
/// and Prometheus exemplars.  `--timing` prints the response envelope's
/// per-stage latency decomposition (and the trace_id) to stderr.
///
/// Prints the server's JSON response line to stdout.  `stats` instead
/// pretty-prints the live telemetry (uptime, qps, latency percentiles per
/// op, cache hit rate, queue depth); `stats --prom` prints the Prometheus
/// text exposition verbatim (pipe into `promtool check metrics`), and
/// `stats --json` the raw response line.  `profile dump` prints the folded
/// stacks verbatim (pipe into flamegraph.pl); `profile dump --json` the raw
/// response line.  Exit codes: 0 when the response carries "ok":true, 1 on
/// transport failure or an error response, 2 on usage errors.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: netpartc [--socket <path> | --tcp <host:port>] <op> [args]"
        " [flags]\n"
        "  ping | sessions | metrics | shutdown\n"
        "  load <session> <circuit-or-hgr-path>\n"
        "  partition <session> [--no-cache] [--trace] [--events]"
        " [--timeout <ms>]\n"
        "  edit <session> <edit-script-file>\n"
        "  unload <session>\n"
        "  stats [--prom | --json]\n"
        "  profile start|stop|dump [--json]\n"
        "  debug flightrec|postmortem\n"
        "  raw <json-request-line>\n"
        "default socket: @netpartd ('@' = abstract namespace)\n"
        "--tcp connects to a netpartd --listen-tcp endpoint instead of the\n"
        "unix socket (mutually exclusive with --socket).\n"
        "--timing prints the server's per-stage latency breakdown (from the\n"
        "response envelope) and the request's trace_id to stderr.\n";
}

std::string quoted(const std::string& s) {
  return "\"" + netpart::obs::json_escape(s) + "\"";
}

using netpart::server::JsonValue;

double field_number(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

/// One latency line of the pretty `stats` report, e.g.
/// "  partition    n=12    p50=3.2ms  p90=8.1ms  p99=9.8ms".
void print_latency_row(const std::string& label, const JsonValue& lat) {
  std::printf("  %-12s n=%-6.0f p50=%.1fms  p90=%.1fms  p99=%.1fms\n",
              label.c_str(), field_number(lat, "count"),
              field_number(lat, "p50"), field_number(lat, "p90"),
              field_number(lat, "p99"));
}

/// Human-readable rendering of a `stats` response; falls back to the raw
/// line when the shape is unexpected (old server, error response).
bool print_stats_pretty(const JsonValue& doc) {
  const JsonValue* ok = doc.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->boolean) return false;
  const double uptime_s = field_number(doc, "uptime_ms") / 1000.0;
  std::printf("uptime:    %.1f s\n", uptime_s);
  std::printf("requests:  %.0f total, %.0f ok, %.0f error (%.2f req/s)\n",
              field_number(doc, "requests_total"),
              field_number(doc, "responses_ok"),
              field_number(doc, "responses_error"), field_number(doc, "qps"));
  std::printf("cache:     %.1f%% hit rate (%.0f hits, %.0f misses)\n",
              field_number(doc, "cache_hit_rate") * 100.0,
              field_number(doc, "cache_hits"),
              field_number(doc, "cache_misses"));
  std::printf("queue:     %.0f / %.0f\n", field_number(doc, "queue_depth"),
              field_number(doc, "queue_capacity"));
  std::printf("sessions:  %.0f live\n", field_number(doc, "sessions_live"));
  const double rss = field_number(doc, "rss_bytes");
  if (rss > 0) std::printf("rss:       %.1f MB\n", rss / (1024.0 * 1024.0));
  const JsonValue* all = doc.find("latency_ms");
  if (all != nullptr && all->is_object()) {
    std::printf("latency (last %.0f s):\n",
                field_number(*all, "window_ms") / 1000.0);
    print_latency_row("all", *all);
  }
  const JsonValue* per_op = doc.find("op_latency_ms");
  if (per_op != nullptr && per_op->is_object()) {
    for (const auto& [name, lat] : per_op->object)
      if (lat.is_object()) print_latency_row(name, lat);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "@netpartd";
  std::string tcp_endpoint;
  bool socket_set = false;
  bool no_cache = false;
  bool trace = false;
  bool events = false;
  bool prom = false;
  bool raw_json = false;
  bool timing = false;
  std::string timeout_ms;
  std::vector<std::string> args;

  const std::vector<std::string> raw(argv + 1, argv + argc);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& arg = raw[i];
    if (arg == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--socket") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --socket requires a path\n";
        return 2;
      }
      socket_path = raw[++i];
      socket_set = true;
    } else if (arg == "--tcp") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --tcp requires host:port\n";
        return 2;
      }
      tcp_endpoint = raw[++i];
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--events") {
      events = true;
    } else if (arg == "--prom") {
      prom = true;
    } else if (arg == "--json") {
      raw_json = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--timeout") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --timeout requires a count\n";
        return 2;
      }
      timeout_ms = raw[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  const std::string& op = args[0];
  std::string request;
  if (op == "ping" || op == "sessions" || op == "metrics" ||
      op == "shutdown") {
    if (args.size() != 1) {
      print_usage(std::cerr);
      return 2;
    }
    request = "{\"id\":1,\"op\":" + quoted(op) + "}";
  } else if (op == "load" && args.size() == 3) {
    // A readable file is a path; anything else is a built-in circuit name.
    const std::ifstream probe(args[2]);
    const std::string source_key = probe.good() ? "path" : "circuit";
    request = "{\"id\":1,\"op\":\"load\",\"session\":" + quoted(args[1]) +
              ",\"" + source_key + "\":" + quoted(args[2]) + "}";
  } else if (op == "partition" && args.size() == 2) {
    request = "{\"id\":1,\"op\":\"partition\",\"session\":" + quoted(args[1]);
    if (no_cache) request += ",\"use_cache\":false";
    if (trace) request += ",\"trace\":true";
    if (events) request += ",\"events\":true";
    if (!timeout_ms.empty()) request += ",\"timeout_ms\":" + timeout_ms;
    request += "}";
  } else if (op == "edit" && args.size() == 3) {
    std::ifstream in(args[2]);
    if (!in) {
      std::cerr << "error: cannot open " << args[2] << '\n';
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    request = "{\"id\":1,\"op\":\"edit\",\"session\":" + quoted(args[1]) +
              ",\"script\":" + quoted(script.str()) + "}";
  } else if (op == "unload" && args.size() == 2) {
    request = "{\"id\":1,\"op\":\"unload\",\"session\":" + quoted(args[1]) + "}";
  } else if (op == "stats" && args.size() == 1) {
    request = "{\"id\":1,\"op\":\"stats\"";
    if (prom) request += ",\"format\":\"prometheus\"";
    request += "}";
  } else if (op == "profile" && args.size() == 2) {
    request = "{\"id\":1,\"op\":\"profile\",\"action\":" + quoted(args[1]) + "}";
  } else if (op == "debug" && args.size() == 2) {
    request = "{\"id\":1,\"op\":\"debug\",\"action\":" + quoted(args[1]) + "}";
  } else if (op == "raw" && args.size() == 2) {
    request = args[1];
  } else {
    print_usage(std::cerr);
    return 2;
  }

  // Every constructed request carries a fresh trace context; the server
  // echoes it on success *and* error responses, stamps the access log and
  // flight recorder with it, and attaches it as a Prometheus exemplar.
  // `raw` frames are the caller's responsibility and go out untouched.
  std::string trace_id;
  if (op != "raw") {
    const netpart::obs::TraceContext ctx = netpart::obs::generate_trace_context();
    trace_id = netpart::obs::format_trace_id(ctx.trace_hi, ctx.trace_lo);
    request.pop_back();  // constructed requests always end with '}'
    request += ",\"trace_id\":\"" + trace_id + "\",\"span_id\":\"" +
               netpart::obs::format_span_id(ctx.span_id) + "\"}";
  }

  if (!tcp_endpoint.empty() && socket_set) {
    std::cerr << "error: --socket and --tcp are mutually exclusive\n";
    return 2;
  }

  netpart::server::Client client;
  const bool connected = !tcp_endpoint.empty()
                             ? client.connect_tcp(tcp_endpoint)
                             : client.connect(socket_path);
  if (!connected) {
    std::cerr << "netpartc: " << client.last_error() << '\n';
    return 1;
  }
  std::string response;
  const auto wall_start = std::chrono::steady_clock::now();
  if (!client.round_trip(request, response)) {
    std::cerr << "netpartc: " << client.last_error() << '\n';
    return 1;
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();

  netpart::server::JsonValue parsed;
  std::string parse_error;
  const bool parse_ok =
      netpart::server::parse_json(response, parsed, parse_error);
  const auto* ok_field = parse_ok ? parsed.find("ok") : nullptr;
  const bool ok =
      ok_field != nullptr && ok_field->is_bool() && ok_field->boolean;

  if (timing) {
    // Per-stage breakdown from the response envelope, client wall clock for
    // scale.  Stages cover parse..serialize — the final socket write can
    // only land in the access log, after the response has left.
    std::fprintf(stderr, "timing: trace_id=%s client_wall=%.3fms\n",
                 trace_id.empty() ? "-" : trace_id.c_str(), wall_ms);
    const JsonValue* stages = parse_ok ? parsed.find("stages_us") : nullptr;
    if (stages != nullptr && stages->is_object()) {
      double server_us = 0.0;
      std::fprintf(stderr, "timing:");
      for (const auto& [name, v] : stages->object) {
        if (!v.is_number()) continue;
        std::fprintf(stderr, " %s=%.0fus", name.c_str(), v.number);
        server_us += v.number;
      }
      std::fprintf(stderr, " server_total=%.0fus\n", server_us);
    } else {
      std::fprintf(stderr,
                   "timing: no stages_us in response (old server, shed "
                   "before execute, or raw request)\n");
    }
  }

  if (op == "stats" && ok && !raw_json) {
    if (prom) {
      // Print the exposition body verbatim (it ends with its own newline),
      // ready for `| promtool check metrics` or a file_sd scrape bridge.
      const auto* body = parsed.find("body");
      if (body != nullptr && body->is_string()) {
        std::fputs(body->string.c_str(), stdout);
        return 0;
      }
    } else if (print_stats_pretty(parsed)) {
      return 0;
    }
  }
  if (op == "profile" && args.size() == 2 && args[1] == "dump" && ok &&
      !raw_json) {
    // Print the folded stacks verbatim (one `path count` line each), ready
    // for `| flamegraph.pl > flame.svg` or speedscope.  The sample totals go
    // to stderr so they never pollute the folded stream.
    const auto* folded = parsed.find("folded");
    if (folded != nullptr && folded->is_string()) {
      std::fputs(folded->string.c_str(), stdout);
      std::fprintf(stderr, "profile: %.0f samples, %.0f unattributed%s\n",
                   field_number(parsed, "samples"),
                   field_number(parsed, "unattributed"),
                   parsed.find("running") != nullptr &&
                           parsed.find("running")->boolean
                       ? " (still running)"
                       : "");
      return 0;
    }
  }
  std::cout << response << '\n';
  return ok ? 0 : 1;
}
