/// netpartc — command-line client for netpartd (docs/SERVER.md).
///
/// usage: netpartc [--socket <path>] <op> [args] [flags]
///   ping
///   load      <session> <circuit-or-hgr-path>
///   partition <session> [--no-cache] [--trace] [--timeout <ms>]
///   edit      <session> <edit-script-file>
///   unload    <session>
///   sessions
///   metrics
///   shutdown
///   raw       <json-request-line>        (sent verbatim)
///
/// Prints the server's JSON response line to stdout.  Exit codes: 0 when
/// the response carries "ok":true, 1 on transport failure or an error
/// response, 2 on usage errors.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: netpartc [--socket <path>] <op> [args] [flags]\n"
        "  ping | sessions | metrics | shutdown\n"
        "  load <session> <circuit-or-hgr-path>\n"
        "  partition <session> [--no-cache] [--trace] [--timeout <ms>]\n"
        "  edit <session> <edit-script-file>\n"
        "  unload <session>\n"
        "  raw <json-request-line>\n"
        "default socket: @netpartd ('@' = abstract namespace)\n";
}

std::string quoted(const std::string& s) {
  return "\"" + netpart::obs::json_escape(s) + "\"";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "@netpartd";
  bool no_cache = false;
  bool trace = false;
  std::string timeout_ms;
  std::vector<std::string> args;

  const std::vector<std::string> raw(argv + 1, argv + argc);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& arg = raw[i];
    if (arg == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--socket") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --socket requires a path\n";
        return 2;
      }
      socket_path = raw[++i];
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--timeout") {
      if (i + 1 >= raw.size()) {
        std::cerr << "error: --timeout requires a count\n";
        return 2;
      }
      timeout_ms = raw[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  const std::string& op = args[0];
  std::string request;
  if (op == "ping" || op == "sessions" || op == "metrics" ||
      op == "shutdown") {
    if (args.size() != 1) {
      print_usage(std::cerr);
      return 2;
    }
    request = "{\"id\":1,\"op\":" + quoted(op) + "}";
  } else if (op == "load" && args.size() == 3) {
    // A readable file is a path; anything else is a built-in circuit name.
    const std::ifstream probe(args[2]);
    const std::string source_key = probe.good() ? "path" : "circuit";
    request = "{\"id\":1,\"op\":\"load\",\"session\":" + quoted(args[1]) +
              ",\"" + source_key + "\":" + quoted(args[2]) + "}";
  } else if (op == "partition" && args.size() == 2) {
    request = "{\"id\":1,\"op\":\"partition\",\"session\":" + quoted(args[1]);
    if (no_cache) request += ",\"use_cache\":false";
    if (trace) request += ",\"trace\":true";
    if (!timeout_ms.empty()) request += ",\"timeout_ms\":" + timeout_ms;
    request += "}";
  } else if (op == "edit" && args.size() == 3) {
    std::ifstream in(args[2]);
    if (!in) {
      std::cerr << "error: cannot open " << args[2] << '\n';
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    request = "{\"id\":1,\"op\":\"edit\",\"session\":" + quoted(args[1]) +
              ",\"script\":" + quoted(script.str()) + "}";
  } else if (op == "unload" && args.size() == 2) {
    request = "{\"id\":1,\"op\":\"unload\",\"session\":" + quoted(args[1]) + "}";
  } else if (op == "raw" && args.size() == 2) {
    request = args[1];
  } else {
    print_usage(std::cerr);
    return 2;
  }

  netpart::server::Client client;
  if (!client.connect(socket_path)) {
    std::cerr << "netpartc: " << client.last_error() << '\n';
    return 1;
  }
  std::string response;
  if (!client.round_trip(request, response)) {
    std::cerr << "netpartc: " << client.last_error() << '\n';
    return 1;
  }
  std::cout << response << '\n';

  netpart::server::JsonValue parsed;
  std::string parse_error;
  if (netpart::server::parse_json(response, parsed, parse_error)) {
    const auto* ok = parsed.find("ok");
    if (ok != nullptr && ok->is_bool() && ok->boolean) return 0;
  }
  return 1;
}
