/// netpartd — the long-running partition server (docs/SERVER.md).
///
/// Speaks newline-delimited JSON over a Unix-domain socket.  Clients load
/// netlists into named sessions, partition them (cold runs are memoized in
/// a content-addressed result cache), apply ECO edit scripts, and
/// repartition incrementally with warm-started spectral solves — the whole
/// PR 3 incremental path, over the wire.
///
/// usage: netpartd [flags]
///   --socket <path>        listen address; '@' prefix = Linux abstract
///                          namespace (default: @netpartd)
///   --listen-tcp <h:p>     also listen on TCP host:port (same protocol,
///                          same admission/drain path; port 0 = ephemeral)
///   --pool-lanes <n>       executor lanes (default 1).  Sessions pin to
///                          lanes by name hash; responses stay
///                          bit-identical at any lane count
///   --queue <n>            request-queue capacity (default 64); under
///                          admission control this is the hit-class bound
///   --no-admission         legacy backpressure: one bounded FIFO over all
///                          classes instead of hit/warm/cold sheds
///   --cold-slots <n>       cold-class occupancy bound (0 = derive from
///                          --queue: max(2, queue/16))
///   --warm-slots <n>       warm-class occupancy bound (0 = derive:
///                          max(4, queue/4))
///   --cache <n>            result-cache entries, 0 disables (default 128)
///   --idle-timeout <ms>    evict sessions idle this long, 0 = never
///   --default-timeout <ms> deadline for requests without timeout_ms
///   --max-frame <bytes>    per-request line limit (default 1 MiB)
///   --threads <n>          worker threads for the compute pool (0 = auto)
///   --flight-recorder <n>  keep the last n request records in the in-memory
///                          flight recorder (`debug` op / post-mortems);
///                          0 disables (default 256)
///   --postmortem <path>    install SIGSEGV/SIGABRT/SIGBUS/SIGQUIT handlers
///                          that dump the flight recorder to this NDJSON
///                          file (SIGQUIT dumps and continues)
///   --debug-ops            accept the debug `sleep` op (tests only)
///   --no-obs               do not enable the metrics registry
///   --access-log <path>    append one NDJSON line per executed request
///   --slow-ms <ms>         flag handlers at least this slow (also echoed
///                          to stderr); 0 = never (default)
///   --latency-window <ms>  rolling window for `stats` latency percentiles
///                          (default 60000)
///   --vcycle-threshold <n> sessions with >= n modules repartition through
///                          the multilevel V-cycle path (default 100000,
///                          0 = always flat)
///   --ml-coarsen-to <n>    V-cycle path: stop coarsening at n modules
///   --ml-vcycles <n>       V-cycle path: improvement-guarded extra cycles
///   --help                 print this message and exit
///
/// SIGTERM/SIGINT drain in-flight work before exiting.  Exit codes follow
/// the netpart CLI scheme: 0 clean shutdown, 1 runtime failure, 2 usage.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "parallel/thread_pool.hpp"
#include "server/server.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: netpartd [--socket <path>] [--listen-tcp <host:port>]\n"
        "                [--pool-lanes <n>] [--queue <n>] [--cache <n>]\n"
        "                [--no-admission] [--cold-slots <n>] [--warm-slots <n>]\n"
        "                [--idle-timeout <ms>] [--default-timeout <ms>]\n"
        "                [--max-frame <bytes>] [--threads <n>]\n"
        "                [--access-log <path>] [--slow-ms <ms>]\n"
        "                [--latency-window <ms>] [--vcycle-threshold <n>]\n"
        "                [--ml-coarsen-to <n>] [--ml-vcycles <n>]\n"
        "                [--flight-recorder <n>] [--postmortem <path>]\n"
        "                [--debug-ops] [--no-obs] [--help]\n"
        "'@'-prefixed socket paths use the Linux abstract namespace.\n"
        "--listen-tcp serves the same protocol beside the unix socket.\n"
        "See docs/SERVER.md for the wire protocol.\n";
}

/// Parse the argument of a flag expecting a non-negative integer; exits
/// with the usage code on failure.
bool parse_nonneg(const std::string& flag, const std::string& text,
                  std::int64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoll(text, &used);
    if (used != text.size() || out < 0) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::cerr << "error: " << flag << " requires a non-negative integer\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using netpart::server::Server;
  using netpart::server::ServerOptions;

  ServerOptions options;
  bool enable_obs = true;
  std::string postmortem_path;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](std::int64_t& out) {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << arg << " requires an argument\n";
        return false;
      }
      return parse_nonneg(arg, args[++i], out);
    };
    std::int64_t n = 0;
    if (arg == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--socket") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: --socket requires a path\n";
        return 2;
      }
      options.socket_path = args[++i];
    } else if (arg == "--listen-tcp") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: --listen-tcp requires host:port\n";
        return 2;
      }
      options.tcp_listen = args[++i];
    } else if (arg == "--pool-lanes") {
      if (!value(n)) return 2;
      options.executor_lanes = static_cast<std::size_t>(n > 0 ? n : 1);
    } else if (arg == "--no-admission") {
      options.admission_control = false;
    } else if (arg == "--cold-slots") {
      if (!value(n)) return 2;
      options.cold_slots = static_cast<std::size_t>(n);
    } else if (arg == "--warm-slots") {
      if (!value(n)) return 2;
      options.warm_slots = static_cast<std::size_t>(n);
    } else if (arg == "--queue") {
      if (!value(n)) return 2;
      options.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--cache") {
      if (!value(n)) return 2;
      options.cache_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--idle-timeout") {
      if (!value(n)) return 2;
      options.idle_timeout_ms = n;
    } else if (arg == "--default-timeout") {
      if (!value(n)) return 2;
      options.default_timeout_ms = n;
    } else if (arg == "--max-frame") {
      if (!value(n)) return 2;
      options.max_frame_bytes = static_cast<std::size_t>(n);
    } else if (arg == "--threads") {
      if (!value(n)) return 2;
      netpart::parallel::ThreadPool::instance().configure(
          static_cast<std::int32_t>(n));
    } else if (arg == "--access-log") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: --access-log requires a path\n";
        return 2;
      }
      options.access_log_path = args[++i];
    } else if (arg == "--slow-ms") {
      if (!value(n)) return 2;
      options.slow_ms = n;
    } else if (arg == "--latency-window") {
      if (!value(n)) return 2;
      options.latency_window_ms = n > 0 ? n : 60000;
    } else if (arg == "--vcycle-threshold") {
      if (!value(n)) return 2;
      options.repartition.vcycle_threshold = static_cast<std::int32_t>(n);
    } else if (arg == "--ml-coarsen-to") {
      if (!value(n)) return 2;
      if (n < 4) {
        std::cerr << "error: --ml-coarsen-to requires an integer >= 4\n";
        return 2;
      }
      options.repartition.vcycle.coarsen_to = static_cast<std::int32_t>(n);
    } else if (arg == "--ml-vcycles") {
      if (!value(n)) return 2;
      options.repartition.vcycle.vcycles = static_cast<std::int32_t>(n);
    } else if (arg == "--flight-recorder") {
      if (!value(n)) return 2;
      options.flight_recorder_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--postmortem") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: --postmortem requires a path\n";
        return 2;
      }
      postmortem_path = args[++i];
    } else if (arg == "--debug-ops") {
      options.enable_debug_ops = true;
    } else if (arg == "--no-obs") {
      enable_obs = false;
    } else {
      std::cerr << "error: unknown flag '" << arg
                << "' (see netpartd --help)\n";
      return 2;
    }
  }
  options.enable_obs = enable_obs;

  std::string error;
  if (!postmortem_path.empty()) {
    if (!netpart::obs::FlightRecorder::install_crash_handlers(postmortem_path,
                                                              &error)) {
      std::cerr << "netpartd: " << error << '\n';
      return 1;
    }
  }
  if (!Server::install_signal_handlers(error)) {
    std::cerr << "netpartd: " << error << '\n';
    return 1;
  }
  Server server(options);
  if (!server.start(error)) {
    std::cerr << "netpartd: " << error << '\n';
    return 1;
  }
  // The smoke scripts wait for this line before connecting.
  std::cout << "netpartd listening on " << options.socket_path << std::endl;
  if (server.tcp_port() > 0)
    std::cout << "netpartd listening on tcp port " << server.tcp_port()
              << std::endl;

  server.run();

  const auto st = server.stats();
  std::cout << "netpartd: drained and stopped (" << st.requests_total
            << " requests, " << st.responses_ok << " ok, "
            << st.responses_error << " errors, " << st.cache_hits
            << " cache hits)\n";
  return 0;
}
